"""Priority-aware transfer scheduling: one choke point for every byte moved.

The paper's Section 4.3 observes that "prefetching ... places a burden" on
the network: aggressive staging competes with foreground view-set misses for
the same WAN links.  In the seed reproduction that interference was an
accident of four independent transfer paths (demand downloads, agent
prefetches, third-party staging copies, uploads) each driving
:class:`~repro.lon.network.Network` flows directly.  This module makes it a
*scheduled* behaviour:

* every transfer is submitted through a :class:`TransferScheduler` carrying a
  :class:`Priority` class (``DEMAND > PREFETCH > STAGING > MAINTENANCE``) and
  an optional :class:`CancelToken`;
* the ``weighted`` policy maps priority classes to weighted max-min fair
  shares, so a demand miss sharing the WAN with staging still gets most of
  the bottleneck; ``strict`` additionally pauses background flows whose path
  overlaps a live higher-class flow (they resume, with progress kept, when
  the foreground drains); ``off`` reproduces the seed's priority-blind equal
  sharing;
* an :class:`InFlightRegistry` shared by the client agent, the prefetcher and
  the staging pump deduplicates cross-layer fetches of the same view set and
  lets a demand arrival *promote* an in-flight background transfer instead of
  starting a duplicate download;
* every lifecycle step (queued → admitted → re-rated → paused/resumed →
  promoted → completed/cancelled/failed) is emitted as a
  :class:`TransferEvent` so experiments can attribute client latency to
  scheduling interference.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..obs.tracer import NOOP_SPAN, NULL_TRACER, SpanLike, Tracer
from .network import AdmissionPlan, Flow, Network

__all__ = [
    "Priority",
    "CancelToken",
    "TransferEvent",
    "TransferHandle",
    "TransferSpec",
    "InFlightEntry",
    "InFlightRegistry",
    "RegistryStats",
    "SchedulerStats",
    "TransferScheduler",
    "DEFAULT_CLASS_WEIGHTS",
    "SCHEDULING_POLICIES",
]


class Priority(IntEnum):
    """Transfer urgency classes, most urgent first (lower value = hotter)."""

    DEMAND = 0       # a user is waiting on this right now
    PREFETCH = 1     # speculative warm-up of the agent cache
    STAGING = 2      # third-party background copies to the LAN depot
    MAINTENANCE = 3  # uploads, lease upkeep, replica repair


#: default weighted-fair-share weights per priority class.  An 8:2:1:0.5
#: split gives a lone demand flow ~70% of a bottleneck it shares with one
#: prefetch and one staging flow, without starving the background entirely.
DEFAULT_CLASS_WEIGHTS: Dict[Priority, float] = {
    Priority.DEMAND: 8.0,
    Priority.PREFETCH: 2.0,
    Priority.STAGING: 1.0,
    Priority.MAINTENANCE: 0.5,
}

#: recognized scheduling policies (the experiment ablation knob).
SCHEDULING_POLICIES = ("off", "weighted", "strict")


class CancelToken:
    """A shared cancellation flag for a group of related transfers.

    Jobs register teardown callbacks with :meth:`on_cancel`; calling
    :meth:`cancel` fires them once.  Tokens let a cursor move kill a whole
    staging copy (every block flow plus its retry logic) in one call.
    """

    def __init__(self) -> None:
        self._cancelled = False
        self._callbacks: List[Callable[[], None]] = []

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Trip the token and fire registered callbacks (idempotent)."""
        if self._cancelled:
            return
        self._cancelled = True
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb()

    def on_cancel(self, cb: Callable[[], None]) -> None:
        """Run ``cb()`` when cancelled (immediately if already tripped)."""
        if self._cancelled:
            cb()
        else:
            self._callbacks.append(cb)


@dataclass
class TransferEvent:
    """One lifecycle step of a scheduled transfer (for latency attribution)."""

    time: float
    label: str
    priority: str        # Priority name, JSON-friendly
    event: str           # queued|admitted|rerated|paused|resumed|promoted|
    #                      completed|cancelled|failed
    detail: str = ""
    #: id of the span owning this transfer (None when tracing is off), so
    #: dedup/promotion can be read inside the demand trace that benefited
    span_id: Optional[int] = None


@dataclass
class SchedulerStats:
    """Counters over a scheduler's lifetime."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    promoted: int = 0
    preempted: int = 0   # strict-policy pauses
    resumed: int = 0
    rerates: int = 0
    # batched-admission counters (see TransferScheduler.submit_batch):
    batches_flushed: int = 0        # batches that took the array path
    submissions_coalesced: int = 0  # specs admitted through array batches
    scalar_fallbacks: int = 0       # specs that fell back to scalar submit
                                    # (below threshold, strict policy, or
                                    # an unplannable batch)
    #: per-class spec counts over array batches (numpy bincount output)
    batched_by_class: Dict[str, int] = field(default_factory=dict)


class TransferHandle:
    """A scheduled transfer: the scheduler client's view of one flow."""

    def __init__(
        self,
        scheduler: TransferScheduler,
        priority: Priority,
        label: str,
        token: Optional[CancelToken],
    ) -> None:
        self.scheduler = scheduler
        self.priority = priority
        self.label = label
        self.token = token
        self.flow: Optional[Flow] = None
        self.state = "queued"  # queued|active|completed|cancelled|failed
        #: per-transfer span (real when tracing is on)
        self.span: SpanLike = NOOP_SPAN

    @property
    def done(self) -> bool:
        """True once the transfer reached a terminal state."""
        return self.state in ("completed", "cancelled", "failed")

    def cancel(self) -> None:
        """Abort this transfer; completion callbacks never fire."""
        self.scheduler.cancel(self)

    def promote(self, priority: Priority) -> bool:
        """Raise urgency mid-flight (returns True if anything changed)."""
        return self.scheduler.promote(self, priority)


@dataclass
class TransferSpec:
    """One transfer request, as an inert value for batched admission.

    Field-for-field the arguments of :meth:`TransferScheduler.submit`,
    plus an optional ``dedup_key``: when set, a spec whose key is already
    held in the scheduler's :class:`InFlightRegistry` — or was claimed by
    an earlier spec of the same batch — is suppressed (its handle comes
    back already cancelled with detail ``"deduped"``) instead of admitted.
    """

    src: str
    dst: str
    size: int
    on_complete: Callable[[Flow], None]
    on_fail: Optional[Callable[[Flow, Exception], None]] = None
    label: str = ""
    priority: Priority = Priority.DEMAND
    token: Optional[CancelToken] = None
    span: Optional[SpanLike] = None
    dedup_key: Optional[str] = None


@dataclass
class InFlightEntry:
    """One resource (view set) currently being transferred by some layer."""

    key: str
    kind: str            # "demand" | "prefetch" | "staging"
    priority: Priority
    promote_cb: Optional[Callable[[Priority], None]] = None
    cancel_cb: Optional[Callable[[], None]] = None
    subscribers: List[Callable[[bool], None]] = field(default_factory=list)
    #: span of the layer moving the bytes; dedup/promotion events land here
    span: SpanLike = NOOP_SPAN


@dataclass
class RegistryStats:
    """Cross-layer coordination counters."""

    registered: int = 0
    deduped: int = 0     # duplicate fetches suppressed
    promoted: int = 0    # background entries promoted to DEMAND
    cancelled: int = 0   # entries cancelled as no longer useful


class InFlightRegistry:
    """Shared index of resources in flight across every transfer path.

    The client agent (demand + prefetch), the staging pump and any other
    byte-moving layer register here under the resource key (a view-set id),
    so no two layers ever fetch the same bytes concurrently, and a demand
    arrival can promote — rather than duplicate — background work.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, InFlightEntry] = {}
        self.stats = RegistryStats()

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[InFlightEntry]:
        """The in-flight entry for ``key``, if any."""
        return self._entries.get(key)

    def register(
        self,
        key: str,
        kind: str,
        priority: Priority,
        promote_cb: Optional[Callable[[Priority], None]] = None,
        cancel_cb: Optional[Callable[[], None]] = None,
        span: SpanLike = NOOP_SPAN,
    ) -> InFlightEntry:
        """Claim ``key``; raises if another layer already holds it."""
        if key in self._entries:
            raise ValueError(f"resource {key!r} is already in flight")
        entry = InFlightEntry(
            key=key, kind=kind, priority=priority,
            promote_cb=promote_cb, cancel_cb=cancel_cb,
            span=span if span is not None else NOOP_SPAN,
        )
        self._entries[key] = entry
        self.stats.registered += 1
        return entry

    def note_deduped(self, key: str) -> None:
        """Record that a duplicate fetch of ``key`` was suppressed."""
        self.stats.deduped += 1
        entry = self._entries.get(key)
        if entry is not None:
            entry.span.event("deduped", key=key)

    def promote(self, key: str, priority: Priority) -> bool:
        """Raise the urgency of an in-flight entry (e.g. to DEMAND)."""
        entry = self._entries.get(key)
        if entry is None or priority >= entry.priority:
            return False
        entry.priority = priority
        self.stats.promoted += 1
        entry.span.event("promoted", priority=Priority(priority).name)
        if entry.promote_cb is not None:
            entry.promote_cb(priority)
        return True

    def subscribe(self, key: str, cb: Callable[[bool], None]) -> bool:
        """Run ``cb(success)`` when the entry completes; False if absent."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        entry.subscribers.append(cb)
        return True

    def complete(self, key: str, success: bool = True) -> None:
        """Release ``key`` and notify subscribers (no-op if absent)."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        for cb in entry.subscribers:
            cb(success)

    def cancel(self, key: str) -> bool:
        """Cancel the in-flight work holding ``key`` (via its cancel_cb).

        The holder's teardown is expected to call :meth:`complete`; if it
        does not, the entry is dropped here with ``success=False``.  Only
        *this* entry is dropped: a teardown that synchronously resubmits
        the key (retarget cancellation racing a fresh demand) re-registers
        a new entry, which must survive the old entry's cleanup — a plain
        ``key in self._entries`` check here would tear the new entry down
        and leave the resource permanently unfetchable.
        """
        entry = self._entries.get(key)
        if entry is None:
            return False
        self.stats.cancelled += 1
        if entry.cancel_cb is not None:
            entry.cancel_cb()
        if self._entries.get(key) is entry:
            self.complete(key, success=False)
        return True


class TransferScheduler:
    """Admission point mapping priority classes onto network flow shares.

    Parameters
    ----------
    network:
        The simulated network every flow runs over.
    policy:
        ``"off"`` — priority-blind equal sharing (the seed behaviour);
        ``"weighted"`` — weighted max-min fair sharing by class weight;
        ``"strict"`` — weighted, plus background flows sharing a link with a
        live higher-class flow are paused (progress kept) until it drains.
    weights:
        Optional per-:class:`Priority` weight overrides.
    on_event:
        Optional ``callback(TransferEvent)`` receiving lifecycle events.
    tracer:
        Observability tracer; per-transfer spans are opened under the parent
        span passed to :meth:`submit`.  Defaults to the shared disabled
        tracer (no spans, negligible overhead).
    vectorize_threshold:
        Batch size (specs) at which :meth:`submit_batch` switches from the
        scalar per-spec loop to array admission (class counting, weight
        assignment, dedup-key hashing and initial rate seeding as numpy
        operations feeding one coalesced rebalance flush).  Mirrors
        ``Network(vectorize_threshold=...)`` for the water-fill; both
        paths are bit-identical, this only moves the crossover.
    """

    def __init__(
        self,
        network: Network,
        policy: str = "weighted",
        weights: Optional[Dict[Priority, float]] = None,
        on_event: Optional[Callable[[TransferEvent], None]] = None,
        tracer: Optional[Tracer] = None,
        vectorize_threshold: int = 6,
    ) -> None:
        if policy not in SCHEDULING_POLICIES:
            raise ValueError(
                f"unknown scheduling policy {policy!r}; "
                f"choose from {SCHEDULING_POLICIES}"
            )
        if vectorize_threshold < 2:
            raise ValueError("vectorize_threshold must be >= 2")
        self.network = network
        self.policy = policy
        self.weights = dict(DEFAULT_CLASS_WEIGHTS)
        if weights:
            self.weights.update(weights)
        for prio, w in self.weights.items():
            if w <= 0:
                raise ValueError(f"weight for {prio!r} must be positive")
        self.on_event = on_event
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.vectorize_threshold = vectorize_threshold
        self.registry = InFlightRegistry()
        self.stats = SchedulerStats()
        self._active: List[TransferHandle] = []

    # ------------------------------------------------------------------
    def weight_for(self, priority: Priority) -> float:
        """The fair-share weight a flow of this class runs at."""
        if self.policy == "off":
            return 1.0
        return self.weights[Priority(priority)]

    @property
    def active_handles(self) -> List[TransferHandle]:
        """Transfers currently admitted (snapshot)."""
        return list(self._active)

    # ------------------------------------------------------------------
    def submit(
        self,
        src: str,
        dst: str,
        size: int,
        on_complete: Callable[[Flow], None],
        on_fail: Optional[Callable[[Flow, Exception], None]] = None,
        label: str = "",
        priority: Priority = Priority.DEMAND,
        token: Optional[CancelToken] = None,
        span: Optional[SpanLike] = None,
        dedup_key: Optional[str] = None,
    ) -> TransferHandle:
        """Admit one transfer at a priority class.

        Semantics match :meth:`Network.transfer` (``NoRouteError`` raises
        immediately, callbacks fire at simulated delivery time) with the
        flow's bandwidth share governed by the scheduling policy.  A tripped
        ``token`` yields an already-cancelled handle whose callbacks never
        fire.  ``span`` (optional) becomes the parent of this transfer's own
        span, linking the flow into the request trace that caused it.
        ``dedup_key`` (optional) suppresses the submission when the key is
        already held in :attr:`registry` (see :class:`TransferSpec`).
        """
        spec = TransferSpec(
            src, dst, size, on_complete, on_fail, label,
            Priority(priority), token, span, dedup_key,
        )
        return self._submit_spec(spec, set(), self._admit_scalar)

    def submit_batch(
        self, specs: Sequence[TransferSpec]
    ) -> List[TransferHandle]:
        """Admit a same-timestamp batch of transfers, vectorized.

        Below ``vectorize_threshold`` specs (or under the ``strict``
        policy, whose pause/resume interleaving is inherently scalar) this
        is exactly a loop of :meth:`submit` calls.  At or above it, class
        counting, weight assignment, dedup-key hashing and initial rate
        seeding run as numpy array operations over the whole batch
        (:meth:`Network.admission_plan`), feeding the network's single
        coalesced rebalance flush.  Under incremental/batched rebalance,
        event streams, transfer events, stats other than the batch
        counters, and every float are bit-identical to the scalar loop —
        the property suite and ``compare_fingerprints`` hold this line.
        Under ``full`` rebalance the batch defers the scalar path's
        per-submission synchronous recompute into one coalesced
        ``_rebalance_full`` (the perf point of batching there): final
        rates, completion times and transfer outcomes stay bit-equal,
        but the intermediate recompute count — and with it
        ``full_recomputes`` and traced ``rerated`` granularity — is
        coarser, the same observable-equality standard the
        batched-vs-incremental rebalancer meets.

        Handles are returned in spec order.  Like :meth:`submit`,
        ``NoRouteError`` propagates from the offending spec's position;
        earlier specs remain admitted.
        """
        specs = list(specs)
        n = len(specs)
        if n == 0:
            return []
        if n < self.vectorize_threshold or self.policy == "strict":
            self.stats.scalar_fallbacks += n
            seen: Set[str] = set()
            return [
                self._submit_spec(s, seen, self._admit_scalar)
                for s in specs
            ]

        # -- array phase: everything derivable before any callback runs --
        # class counting + weight assignment via a per-class LUT
        prio_vals = np.fromiter(
            (int(Priority(s.priority)) for s in specs),
            dtype=np.intp, count=n,
        )
        if self.policy == "off":
            weights = np.ones(n, dtype=float)
        else:
            lut = np.array(
                [self.weights[p] for p in Priority], dtype=float
            )
            weights = lut[prio_vals]
        class_counts = np.bincount(prio_vals, minlength=len(Priority))
        # dedup-key hashing: one vectorized pass decides whether any
        # intra-batch duplicate is possible at all; the (rare) positive
        # case confirms by string equality below, so hash collisions
        # cannot mis-suppress
        keyed = [s.dedup_key for s in specs]
        if any(k is not None for k in keyed):
            # crc32, not hash(): builtin str hashing is salted per
            # process (PYTHONHASHSEED), and this pre-pass must reach the
            # same may_collide verdict in every worker.  crc32 is
            # non-negative, so the -(i + 1) no-key sentinels stay
            # distinct from every real key.
            hashes = np.fromiter(
                (zlib.crc32(k.encode()) if k is not None else -(i + 1)
                 for i, k in enumerate(keyed)),
                dtype=np.int64, count=n,
            )
            may_collide = len(np.unique(hashes)) < n
        else:
            may_collide = False

        # entry pre-checks: which specs will actually admit a flow (a
        # tripped token or a dedup hit admits nothing).  Re-checked per
        # spec at its turn — a mid-batch callback can trip a token — and
        # any divergence degrades the plan, preserving exactness.
        registry = self.registry
        pre_seen: Set[str] = set()
        plan_items: List[Tuple[str, str, int]] = []
        plan_index: Dict[int, int] = {}
        for i, s in enumerate(specs):
            if s.token is not None and s.token.cancelled:
                continue
            k = s.dedup_key
            if k is not None:
                if k in registry or (may_collide and k in pre_seen):
                    continue
                if may_collide:
                    pre_seen.add(k)
            plan_index[i] = len(plan_items)
            plan_items.append((s.src, s.dst, s.size))
        plan = self.network.admission_plan(plan_items)
        if plan.vector_ok:
            self.stats.batches_flushed += 1
            self.stats.submissions_coalesced += n
            for p, c in zip(Priority, class_counts):
                if c:
                    self.stats.batched_by_class[p.name] = (
                        self.stats.batched_by_class.get(p.name, 0)
                        + int(c)
                    )
        else:
            self.stats.scalar_fallbacks += n

        handles: List[TransferHandle] = []
        run_seen: Set[str] = set()
        for i, s in enumerate(specs):
            j = plan_index.get(i)
            if j is None:
                admit = self._unplanned_admit(plan)
                handles.append(self._submit_spec(s, run_seen, admit))
            else:
                admit = self._planned_admit(plan, j, float(weights[i]))
                handles.append(
                    self._submit_spec(s, run_seen, admit,
                                      on_skip=plan.skip)
                )
        plan.finish()
        return handles

    def _admit_scalar(
        self,
        spec: TransferSpec,
        on_complete: Callable[[Flow], None],
        on_fail: Callable[[Flow, Exception], None],
        weight: float,
    ) -> Flow:
        return self.network.transfer(
            spec.src, spec.dst, spec.size,
            on_complete=on_complete,
            on_fail=on_fail,
            label=spec.label,
            weight=weight,
        )

    def _planned_admit(
        self, plan: AdmissionPlan, j: int, weight: float
    ) -> Callable[
        [TransferSpec, Callable[[Flow], None],
         Callable[[Flow, Exception], None], float], Flow
    ]:
        # the vectorized weight shadows the scalar weight_for() value —
        # same LUT, same float — factory form keeps the closure out of the
        # batch loop (B023)
        def admit(
            spec: TransferSpec,
            on_complete: Callable[[Flow], None],
            on_fail: Callable[[Flow, Exception], None],
            _weight: float,
        ) -> Flow:
            return plan.admit(j, on_complete, on_fail, spec.label, weight)
        return admit

    def _unplanned_admit(
        self, plan: AdmissionPlan
    ) -> Callable[
        [TransferSpec, Callable[[Flow], None],
         Callable[[Flow, Exception], None], float], Flow
    ]:
        # a spec the pre-check filtered out nevertheless reached admission
        # (its registry entry completed mid-batch): admit it scalar and
        # degrade the plan, whose verdicts assumed this flow absent
        def admit(
            spec: TransferSpec,
            on_complete: Callable[[Flow], None],
            on_fail: Callable[[Flow, Exception], None],
            weight: float,
        ) -> Flow:
            plan.skip()
            return self._admit_scalar(spec, on_complete, on_fail, weight)
        return admit

    def _submit_spec(
        self,
        spec: TransferSpec,
        seen: Set[str],
        admit: Callable[
            [TransferSpec, Callable[[Flow], None],
             Callable[[Flow, Exception], None], float], Flow
        ],
        on_skip: Optional[Callable[[], None]] = None,
    ) -> TransferHandle:
        """The one admission sequence both scalar and batched paths share.

        ``seen`` carries dedup keys claimed by earlier specs of the same
        batch (a fresh set for single submits).  ``admit`` performs the
        actual network admission; ``on_skip`` fires if this spec turns out
        to admit nothing (batched admission uses it to degrade the plan).
        """
        priority = Priority(spec.priority)
        handle = TransferHandle(self, priority, spec.label, spec.token)
        handle.span = self.tracer.begin(
            f"xfer:{spec.label}" if spec.label else "xfer",
            parent=spec.span,
            category="transfer",
            src=spec.src, dst=spec.dst, bytes=spec.size,
            priority=priority.name,
        )
        self._emit("queued", handle)
        if spec.token is not None and spec.token.cancelled:
            if on_skip is not None:
                on_skip()
            handle.state = "cancelled"
            self._emit("cancelled", handle, detail="token tripped")
            handle.span.finish(state="cancelled")
            return handle
        key = spec.dedup_key
        if key is not None:
            if key in self.registry or key in seen:
                if on_skip is not None:
                    on_skip()
                self.registry.note_deduped(key)
                handle.state = "cancelled"
                self._emit("cancelled", handle, detail="deduped")
                handle.span.finish(state="cancelled")
                return handle
            seen.add(key)
        self.stats.submitted += 1
        on_complete = spec.on_complete
        on_fail = spec.on_fail

        def _complete(flow: Flow) -> None:
            if handle.done:
                return
            handle.state = "completed"
            self.stats.completed += 1
            self._retire(handle, "completed")
            on_complete(flow)

        def _fail(flow: Flow, exc: Exception) -> None:
            if handle.done:
                return
            handle.state = "failed"
            self.stats.failed += 1
            self._retire(handle, "failed", detail=str(exc))
            if on_fail is not None:
                on_fail(flow, exc)

        flow = admit(spec, _complete, _fail, self.weight_for(priority))
        handle.flow = flow
        handle.state = "active"
        if self.on_event is not None:
            def _rerated(fl: Flow, old_rate: float) -> None:
                self.stats.rerates += 1
                self._emit(
                    "rerated", handle,
                    detail=f"{old_rate:.0f}->{fl.rate:.0f}B/s",
                )
            flow.on_rate_change = _rerated
        if spec.token is not None:
            spec.token.on_cancel(handle.cancel)
        self._active.append(handle)
        self._emit("admitted", handle)
        if self.policy == "strict":
            self._apply_strict()
        return handle

    def cancel(self, handle: TransferHandle) -> None:
        """Abort a scheduled transfer (no-op once terminal)."""
        if handle.done:
            return
        handle.state = "cancelled"
        self.stats.cancelled += 1
        if handle.flow is not None:
            self.network.cancel_flow(handle.flow)
        self._retire(handle, "cancelled")

    def promote(self, handle: TransferHandle, priority: Priority) -> bool:
        """Raise a transfer's class mid-flight; re-rates immediately."""
        priority = Priority(priority)
        if handle.done or priority >= handle.priority:
            return False
        handle.priority = priority
        self.stats.promoted += 1
        if handle.flow is not None:
            self.network.set_flow_weight(
                handle.flow, self.weight_for(priority)
            )
        handle.span.annotate(priority=priority.name)
        self._emit("promoted", handle, detail=priority.name)
        if self.policy == "strict":
            self._apply_strict()
        return True

    # ------------------------------------------------------------------
    def _retire(self, handle: TransferHandle, event: str,
                detail: str = "") -> None:
        if handle in self._active:
            self._active.remove(handle)
        self._emit(event, handle, detail=detail)
        handle.span.finish(state=handle.state)
        if self.policy == "strict":
            self._apply_strict()

    def _apply_strict(self) -> None:
        """Pause background flows sharing a link with hotter live flows.

        Flows are visited in urgency order; links claimed by running flows
        of strictly higher classes force lower-class flows off the network
        (paused, progress kept).  When the foreground drains, the next
        admission change resumes the survivors.
        """
        live = [
            h for h in self._active
            if h.flow is not None
            and not (h.flow.done or h.flow.failed)
            and h.flow.path_links
        ]
        live.sort(key=lambda h: h.priority)
        claimed: Set[object] = set()
        tier_links: Set[object] = set()
        tier: Optional[Priority] = None
        for h in live:
            if tier is None or h.priority != tier:
                claimed |= tier_links
                tier_links = set()
                tier = h.priority
            preempted = any(lk in claimed for lk in h.flow.path_links)
            if preempted and not h.flow.paused:
                self.network.pause_flow(h.flow)
                self.stats.preempted += 1
                self._emit("paused", h)
            elif not preempted and h.flow.paused:
                self.network.resume_flow(h.flow)
                self.stats.resumed += 1
                self._emit("resumed", h)
            if not preempted:
                tier_links |= set(h.flow.path_links)

    def _emit(self, event: str, handle: TransferHandle,
              detail: str = "") -> None:
        # span events are kept distinct from the open/close pair; "queued"
        # and the terminal event already bound the span itself
        if event not in ("queued", "completed", "cancelled", "failed"):
            handle.span.event(event, detail=detail)
        if self.on_event is None:
            return
        self.on_event(TransferEvent(
            time=self.network.queue.now,
            label=handle.label,
            priority=handle.priority.name,
            event=event,
            detail=detail,
            span_id=handle.span.span_id,
        ))

"""Camera lattice and view-set partitioning.

The light field database is sampled from an ``n_theta × n_phi`` lattice of
camera positions on the outer sphere, at 2.5° angular intervals in the paper
(72 × 144 positions).  The lattice is partitioned into ``l × l`` groups
called **view sets** (l = 6 → 15° windows → 12 × 24 view sets), which are the
unit of storage, compression and network transmission, "a natural mechanism
to exploit view coherence".

Indexing conventions:

* camera index ``(i, j)``: ``i`` along theta (0 .. n_theta-1), ``j`` along
  phi (0 .. n_phi-1, periodic);
* view-set index ``(vi, vj)``: ``vi = i // l``, ``vj = j // l``;
* view-set id: the string ``"vs-{vi}-{vj}"`` (used as exNode/DVS keys).

Theta rows are placed at cell centers, ``theta_i = (i + 0.5) * pi / n_theta``,
so no camera sits exactly on a pole; phi columns at ``phi_j = j * 2pi /
n_phi``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

__all__ = ["CameraLattice", "ViewSetKey", "parse_viewset_id"]

ViewSetKey = Tuple[int, int]

_VS_RE = re.compile(r"^vs-(\d+)-(\d+)$")


def parse_viewset_id(vid: str) -> ViewSetKey:
    """Parse ``"vs-{vi}-{vj}"`` back to the (vi, vj) pair."""
    m = _VS_RE.match(vid)
    if not m:
        raise ValueError(f"not a view-set id: {vid!r}")
    return int(m.group(1)), int(m.group(2))


@dataclass(frozen=True)
class CameraLattice:
    """The sample-view lattice and its view-set partition.

    Parameters
    ----------
    n_theta, n_phi:
        Lattice dimensions.  The paper's full scale is 72 × 144 (2.5°
        spacing); tests use smaller lattices.  Both must be divisible by
        ``l``.
    l:
        View-set edge length (paper: 6, i.e. 15° windows).
    """

    n_theta: int = 72
    n_phi: int = 144
    l: int = 6

    def __post_init__(self) -> None:
        if self.n_theta < 1 or self.n_phi < 1:
            raise ValueError("lattice dimensions must be positive")
        if self.l < 1:
            raise ValueError("view-set size l must be >= 1")
        if self.n_theta % self.l or self.n_phi % self.l:
            raise ValueError(
                f"lattice {self.n_theta}x{self.n_phi} not divisible by "
                f"l={self.l}"
            )

    # ------------------------------------------------------------------
    # lattice geometry
    # ------------------------------------------------------------------
    @property
    def theta_step(self) -> float:
        """Angular spacing between theta rows (radians)."""
        return np.pi / self.n_theta

    @property
    def phi_step(self) -> float:
        """Angular spacing between phi columns (radians)."""
        return 2.0 * np.pi / self.n_phi

    @property
    def n_cameras(self) -> int:
        """Total number of sample views in the lattice."""
        return self.n_theta * self.n_phi

    def angles(self, i: int, j: int) -> Tuple[float, float]:
        """(theta, phi) of camera (i, j); j wraps modulo n_phi."""
        if not 0 <= i < self.n_theta:
            raise IndexError(f"theta index {i} out of range")
        j = j % self.n_phi
        return (i + 0.5) * self.theta_step, j * self.phi_step

    def continuous_index(
        self, theta: np.ndarray, phi: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fractional lattice coordinates of arbitrary angles.

        The theta coordinate is clamped to the valid camera band; phi is
        periodic (returned in [0, n_phi)).
        """
        fi = np.asarray(theta, dtype=np.float64) / self.theta_step - 0.5
        fi = np.clip(fi, 0.0, self.n_theta - 1.0)
        fj = np.mod(np.asarray(phi, dtype=np.float64) / self.phi_step,
                    self.n_phi)
        return fi, fj

    def nearest_camera(self, theta: float, phi: float) -> Tuple[int, int]:
        """The lattice camera closest to (theta, phi)."""
        fi, fj = self.continuous_index(np.array(theta), np.array(phi))
        i = int(np.clip(np.rint(fi), 0, self.n_theta - 1))
        j = int(np.rint(fj)) % self.n_phi
        return i, j

    # ------------------------------------------------------------------
    # view sets
    # ------------------------------------------------------------------
    @property
    def n_viewsets(self) -> Tuple[int, int]:
        """(rows, cols) of the view-set grid (paper: 12 × 24)."""
        return self.n_theta // self.l, self.n_phi // self.l

    def viewset_of(self, i: int, j: int) -> ViewSetKey:
        """View-set key containing camera (i, j)."""
        if not 0 <= i < self.n_theta:
            raise IndexError(f"theta index {i} out of range")
        return i // self.l, (j % self.n_phi) // self.l

    def viewset_id(self, key: ViewSetKey) -> str:
        """String id used for storage, DVS and exNode naming."""
        vi, vj = self._wrap_key(key)
        return f"vs-{vi}-{vj}"

    def _wrap_key(self, key: ViewSetKey) -> ViewSetKey:
        vi, vj = key
        rows, cols = self.n_viewsets
        if not 0 <= vi < rows:
            raise IndexError(f"view-set row {vi} out of range")
        return vi, vj % cols

    def cameras_in_viewset(self, key: ViewSetKey) -> List[Tuple[int, int]]:
        """All l × l camera indices in a view set, row-major."""
        vi, vj = self._wrap_key(key)
        return [
            (vi * self.l + a, vj * self.l + b)
            for a in range(self.l)
            for b in range(self.l)
        ]

    def all_viewsets(self) -> Iterator[ViewSetKey]:
        """Iterate every view-set key in row-major order."""
        rows, cols = self.n_viewsets
        for vi in range(rows):
            for vj in range(cols):
                yield (vi, vj)

    def viewset_containing(self, theta: float, phi: float) -> ViewSetKey:
        """View set whose angular window contains the given view angles."""
        i, j = self.nearest_camera(theta, phi)
        return self.viewset_of(i, j)

    def viewset_center(self, key: ViewSetKey) -> Tuple[float, float]:
        """(theta, phi) at the center of a view set's angular window."""
        vi, vj = self._wrap_key(key)
        theta = (vi * self.l + self.l / 2.0) * self.theta_step
        phi = (vj * self.l + self.l / 2.0 - 0.5) * self.phi_step
        return theta, phi

    # ------------------------------------------------------------------
    # neighborhood / prefetch support
    # ------------------------------------------------------------------
    def neighbors(self, key: ViewSetKey) -> List[ViewSetKey]:
        """The (up to) 8 neighboring view sets (Figure 4's ring).

        phi wraps around; theta rows beyond the poles do not exist, so polar
        view sets have fewer neighbors.
        """
        vi, vj = self._wrap_key(key)
        rows, cols = self.n_viewsets
        out = []
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                if di == 0 and dj == 0:
                    continue
                ni = vi + di
                if not 0 <= ni < rows:
                    continue
                out.append((ni, (vj + dj) % cols))
        return out

    def quadrant(self, theta: float, phi: float) -> Tuple[int, int]:
        """Quadrant of the containing view set holding (theta, phi).

        Returns ``(qi, qj)`` with each in {-1, +1}: qi = -1 means the upper
        (smaller theta) half, qj = -1 the left (smaller phi) half.  This is
        the input to the Figure 4 prefetch policy: only neighbors on the
        quadrant's side are likely needed next.
        """
        vi, vj = self.viewset_containing(theta, phi)
        fi, fj = self.continuous_index(np.array(theta), np.array(phi))
        local_i = float(fi) - vi * self.l
        local_j = float(fj) - vj * self.l
        half = (self.l - 1) / 2.0
        qi = -1 if local_i <= half else 1
        qj = -1 if local_j <= half else 1
        return qi, qj

    def quadrant_neighbors(
        self, theta: float, phi: float
    ) -> List[ViewSetKey]:
        """The 3 neighbors the Figure 4 policy prefetches for this position.

        E.g. in the top-left quadrant: the view sets above, to the left and
        diagonally above-left of the current one.
        """
        key = self.viewset_containing(theta, phi)
        vi, vj = key
        qi, qj = self.quadrant(theta, phi)
        rows, cols = self.n_viewsets
        wanted = [(vi + qi, vj), (vi, vj + qj), (vi + qi, vj + qj)]
        out = []
        for ni, nj in wanted:
            if 0 <= ni < rows:
                out.append((ni, nj % cols))
        return out

    def viewset_distance(self, a: ViewSetKey, b: ViewSetKey) -> float:
        """Grid distance between view sets (phi wraps) — staging order key."""
        (ai, aj), (bi, bj) = self._wrap_key(a), self._wrap_key(b)
        rows, cols = self.n_viewsets
        dj = abs(aj - bj)
        dj = min(dj, cols - dj)
        di = abs(ai - bi)
        return float(np.hypot(di, dj))

"""Light field database generation (the paper's server-side generator).

Renders every sample view in a view set with the parallel ray caster,
quantizes to 8-bit, packs the view set, compresses it, and accumulates the
timing/size statistics Section 4.1 reports (generation time, per-view-set
compressed sizes, compression ratio).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..render.camera import Camera, orbit_camera
from ..render.image import to_uint8
from ..render.lighting import Light
from ..render.parallel import ParallelRenderer
from ..render.raycast import RenderSettings
from ..volume.grid import VolumeGrid
from ..volume.transfer import TransferFunction
from .compression import CompressionResult, ZlibCodec
from .database import LightFieldDatabase
from .lattice import CameraLattice, ViewSetKey
from .sphere import TwoSphere
from .viewset import ViewSet

__all__ = ["BuildStats", "LightFieldBuilder"]


@dataclass
class BuildStats:
    """Accumulated generation statistics (Section 4.1's numbers)."""

    viewsets_built: int = 0
    views_rendered: int = 0
    render_seconds: float = 0.0
    compress_seconds: float = 0.0
    raw_bytes: int = 0
    compressed_bytes: int = 0

    @property
    def total_seconds(self) -> float:
        """Wall time spent rendering + compressing."""
        return self.render_seconds + self.compress_seconds

    @property
    def compression_ratio(self) -> float:
        """Aggregate raw/compressed ratio."""
        if self.compressed_bytes == 0:
            return float("inf")
        return self.raw_bytes / self.compressed_bytes


class LightFieldBuilder:
    """Builds :class:`LightFieldDatabase` objects from a volume.

    Parameters
    ----------
    volume, transfer:
        Dataset and classification.
    lattice:
        Camera lattice (72×144 at paper scale).
    resolution:
        Sample-view resolution r (paper sweeps 200..600).
    spheres:
        Parameter spheres; by default the inner sphere circumscribes the
        volume with 5% margin and the outer sphere has 2.5× that radius.
    codec:
        View-set codec (default: the paper's zlib).
    workers:
        Ray-caster worker processes (the paper used 32).
    start_method:
        Multiprocessing start method forwarded to
        :class:`~repro.render.parallel.ParallelRenderer` (``None`` =
        fork where available, else spawn).
    """

    def __init__(
        self,
        volume: VolumeGrid,
        transfer: TransferFunction,
        lattice: CameraLattice,
        resolution: int,
        spheres: Optional[TwoSphere] = None,
        codec: Optional[ZlibCodec] = None,
        workers: int = 1,
        settings: RenderSettings = RenderSettings(),
        light: Light = Light(),
        start_method: Optional[str] = None,
    ) -> None:
        if resolution < 1:
            raise ValueError("resolution must be positive")
        self.volume = volume
        self.transfer = transfer
        self.lattice = lattice
        self.resolution = int(resolution)
        if spheres is None:
            r_in = volume.bounding_radius * 1.05
            spheres = TwoSphere(r_inner=r_in, r_outer=2.5 * r_in)
        self.spheres = spheres
        self.codec = codec if codec is not None else ZlibCodec()
        # the parallel renderer builds the macrocell acceleration structure
        # once here (in the parent) and shares it with render workers; all
        # l² sample views of a view set land in one shared-memory stack
        self.renderer = ParallelRenderer(
            volume,
            transfer,
            settings,
            light,
            workers=workers,
            start_method=start_method,
        )
        self.stats = BuildStats()

    # ------------------------------------------------------------------
    def camera_for(self, i: int, j: int) -> Camera:
        """The lattice sample-view camera at lattice position (i, j)."""
        theta, phi = self.lattice.angles(i, j)
        return orbit_camera(
            theta,
            phi,
            radius=self.spheres.r_outer,
            resolution=self.resolution,
            fov_deg=self.spheres.camera_fov_deg(),
        )

    def render_viewset(self, key: ViewSetKey) -> ViewSet:
        """Render all l² sample views of one view set."""
        cams = [
            self.camera_for(i, j)
            for (i, j) in self.lattice.cameras_in_viewset(key)
        ]
        t0 = time.perf_counter()
        frames = self.renderer.render_many(cams)
        self.stats.render_seconds += time.perf_counter() - t0
        self.stats.views_rendered += len(frames)
        l, r = self.lattice.l, self.resolution
        images = np.empty((l, l, r, r, 3), dtype=np.uint8)
        for idx, frame in enumerate(frames):
            images[idx // l, idx % l] = to_uint8(frame)
        return ViewSet(key=key, images=images)

    def compress_viewset(self, viewset: ViewSet) -> CompressionResult:
        """Compress one view set with the configured codec."""
        result = self.codec.compress(viewset)
        self.stats.compress_seconds += result.compress_seconds
        self.stats.raw_bytes += result.raw_size
        self.stats.compressed_bytes += result.compressed_size
        self.stats.viewsets_built += 1
        return result

    def build(
        self, keys: Optional[Iterable[ViewSetKey]] = None
    ) -> LightFieldDatabase:
        """Render + compress view sets into a database.

        ``keys=None`` builds the complete lattice.  Passing a subset supports
        the paper's runtime-generation mode (view sets rendered on demand)
        and the extrapolated Figure 7 size measurement.
        """
        db = LightFieldDatabase(
            self.lattice,
            self.spheres,
            self.resolution,
            name=f"{self.volume.name}-r{self.resolution}",
        )
        todo = list(keys) if keys is not None else list(
            self.lattice.all_viewsets()
        )
        for key in todo:
            vs = self.render_viewset(key)
            db.add(key, self.compress_viewset(vs))
        return db

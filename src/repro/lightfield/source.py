"""View-set payload sources for the streaming system.

The streaming experiments (Figures 8-12) need *payload bytes* for every view
set of a paper-scale database (12 × 24 view sets at 200²-600² sample views).
Ray-casting all 10,368 sample views in pure Python would take hours per
resolution, so two sources implement one protocol:

* :class:`DatabaseSource` — a really-rendered :class:`LightFieldDatabase`
  (used at test scale and by the fidelity experiments);
* :class:`SyntheticSource` — procedurally generated sample views whose zlib
  compressibility is calibrated to the paper's 5-7× band.  The pixel
  *content* is irrelevant to streaming latency; only payload sizes and
  (de)compression cost matter, and those are real: every payload is a real
  zlib stream over a real uint8 view-set block.

This substitution is recorded in DESIGN.md §2.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Protocol

import numpy as np

from .compression import ZlibCodec
from .database import LightFieldDatabase
from .lattice import CameraLattice, ViewSetKey
from .sphere import TwoSphere
from .viewset import ViewSet

__all__ = ["ViewSetSource", "DatabaseSource", "SyntheticSource"]


class ViewSetSource(Protocol):
    """Provider of compressed view-set payloads for a whole lattice."""

    lattice: CameraLattice
    spheres: TwoSphere
    resolution: int

    def payload(self, key: ViewSetKey) -> bytes:
        """Compressed wire payload for a view set."""
        ...


class DatabaseSource:
    """Adapter exposing a built :class:`LightFieldDatabase` as a source."""

    def __init__(self, db: LightFieldDatabase) -> None:
        if not db.is_complete():
            raise ValueError(
                "streaming sessions need a complete database; "
                f"{len(db)} of {db.lattice.n_viewsets} view sets present"
            )
        self.db = db
        self.lattice = db.lattice
        self.spheres = db.spheres
        self.resolution = db.resolution

    def payload(self, key: ViewSetKey) -> bytes:
        return self.db.payload(key)


class SyntheticSource:
    """Procedural view sets with paper-band compressibility.

    Each sample view is a smooth multi-frequency pattern (a stand-in for the
    shaded negHip renders) plus low-amplitude deterministic noise that keeps
    zlib from over-compressing; adjacent views drift slowly, mimicking view
    coherence.  Payloads are produced lazily, cached, and deterministic in
    ``(key, seed)``.

    ``noise_fraction`` tunes the compression ratio — the fraction of
    silhouette pixels carrying dither noise.  The default 0.13 lands zlib
    level 6 in the paper's 5-7× band; 0 compresses far better, 0.3 worse.
    """

    def __init__(
        self,
        lattice: CameraLattice,
        resolution: int,
        spheres: Optional[TwoSphere] = None,
        seed: int = 2003,
        noise_fraction: float = 0.13,
        codec: Optional[ZlibCodec] = None,
    ) -> None:
        if resolution < 1:
            raise ValueError("resolution must be positive")
        if not 0.0 <= noise_fraction <= 1.0:
            raise ValueError("noise_fraction must be in [0, 1]")
        self.lattice = lattice
        self.resolution = int(resolution)
        self.spheres = spheres if spheres is not None else TwoSphere(1.0, 2.5)
        self.seed = seed
        self.noise_fraction = float(noise_fraction)
        self.codec = codec if codec is not None else ZlibCodec()
        self._cache: Dict[ViewSetKey, bytes] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def viewset(self, key: ViewSetKey) -> ViewSet:
        """Generate (deterministically) the uncompressed view set.

        Structure mirrors a real sample view: zero background outside the
        inner-sphere silhouette, smooth shaded interior (quantized — real
        renders quantize to uint8 too), sparse dither noise standing in for
        shading detail.
        """
        vi, vj = key
        l, r = self.lattice.l, self.resolution
        rng = np.random.default_rng(
            (self.seed * 1_000_003 + vi * 1009 + vj) & 0x7FFFFFFF
        )
        span = np.linspace(-1.0, 1.0, r, dtype=np.float32)
        xx, yy = np.meshgrid(span, span)
        disk = (xx * xx + yy * yy) <= 0.92  # silhouette of inner sphere
        phase = rng.uniform(0, 2 * np.pi, size=4).astype(np.float32)
        freq = rng.uniform(2.0, 6.0, size=4).astype(np.float32)
        images = np.zeros((l, l, r, r, 3), dtype=np.uint8)
        n_disk = int(disk.sum())
        for a in range(l):
            for b in range(l):
                drift = 0.06 * (a * l + b)  # slow per-view drift
                base = (
                    np.sin(freq[0] * xx + phase[0] + drift)
                    + np.sin(freq[1] * yy + phase[1])
                    + np.sin(freq[2] * (xx + yy) + phase[2] + drift)
                ) / 3.0
                lum = (0.5 + 0.45 * base) * 255.0
                lum = np.round(lum / 3.0) * 3.0  # smooth quantized shading
                img = np.stack(
                    [lum, lum * 0.8, lum * 0.6 + 20.0], axis=-1
                )
                img[~disk] = 0.0
                if self.noise_fraction > 0 and n_disk:
                    mask = (rng.random((r, r)) < self.noise_fraction) & disk
                    img[mask] += rng.integers(
                        -5, 6, size=(int(mask.sum()), 3)
                    )
                images[a, b] = np.clip(img, 0, 255).astype(np.uint8)
        return ViewSet(key=key, images=images)

    def payload(self, key: ViewSetKey) -> bytes:
        """Compressed payload (cached; thread-safe for parallel builds)."""
        with self._lock:
            cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self.codec.compress(self.viewset(key))
        with self._lock:
            self._cache[key] = result.payload
        return result.payload

    def raw_size(self) -> int:
        """Uncompressed bytes of one view set (all are identical in size)."""
        return ViewSet.payload_size(self.lattice.l, self.resolution)

"""Two-sphere (spherical) light field parameterization.

The original light field used two parallel planes, which forces the camera to
stay behind one boundary plane.  Section 3.2 of the paper replaces this with
**two concentric spheres** around the volume: any viewing ray that intersects
the volume pierces both spheres, and the two intersection points — each
described by spherical angles (theta, phi) — give the 4-D ray index
``(s, t, u, v)``.  By convention here:

* ``(u, v)`` = (theta, phi) of the ray's entry point on the **outer** sphere,
  where the camera lattice lives;
* ``(s, t)`` = (theta, phi) of the ray's entry point on the **inner** sphere,
  which tightly bounds the dataset.

All functions are vectorized over ``(N, 3)`` ray bundles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["TwoSphere", "cartesian_to_angles", "angles_to_cartesian"]


def cartesian_to_angles(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(theta, phi) of points (relative to the origin).

    theta in [0, pi] from +z; phi in [0, 2pi) from +x toward +y.
    """
    p = np.asarray(points, dtype=np.float64)
    r = np.linalg.norm(p, axis=-1)
    r = np.where(r == 0, 1.0, r)
    theta = np.arccos(np.clip(p[..., 2] / r, -1.0, 1.0))
    phi = np.arctan2(p[..., 1], p[..., 0])
    phi = np.where(phi < 0, phi + 2.0 * np.pi, phi)
    return theta, phi


def angles_to_cartesian(
    theta: np.ndarray, phi: np.ndarray, radius: float = 1.0
) -> np.ndarray:
    """Points on a sphere of ``radius`` from spherical angles."""
    theta = np.asarray(theta, dtype=np.float64)
    phi = np.asarray(phi, dtype=np.float64)
    st = np.sin(theta)
    return radius * np.stack(
        [st * np.cos(phi), st * np.sin(phi), np.cos(theta)], axis=-1
    )


@dataclass(frozen=True)
class TwoSphere:
    """Concentric parameter spheres: cameras on the outer, data in the inner.

    Parameters
    ----------
    r_inner:
        Radius of the inner sphere; must enclose the dataset (typically the
        volume's bounding radius plus a small margin).
    r_outer:
        Radius of the outer sphere, the camera-lattice sphere.
    """

    r_inner: float
    r_outer: float

    def __post_init__(self) -> None:
        if self.r_inner <= 0:
            raise ValueError("r_inner must be positive")
        if self.r_outer <= self.r_inner:
            raise ValueError("r_outer must exceed r_inner")

    # ------------------------------------------------------------------
    def intersect_sphere(
        self, origins: np.ndarray, dirs: np.ndarray, radius: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """First non-negative intersection parameter with a centered sphere.

        Returns ``(t, hit)``: ray parameter of the first intersection with
        ``t >= 0`` and a boolean hit mask.  Directions must be unit length.
        """
        o = np.asarray(origins, dtype=np.float64)
        d = np.asarray(dirs, dtype=np.float64)
        b = np.einsum("ij,ij->i", o, d)
        c = np.einsum("ij,ij->i", o, o) - radius * radius
        disc = b * b - c
        hit = disc >= 0.0
        sq = np.sqrt(np.where(hit, disc, 0.0))
        t0 = -b - sq
        t1 = -b + sq
        # first intersection at t >= 0: prefer entry point, else exit
        t = np.where(t0 >= 0.0, t0, t1)
        hit &= t >= 0.0
        return t, hit

    def ray_to_stuv(
        self, origins: np.ndarray, dirs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Map rays to ``(s, t, u, v)`` plus a validity mask.

        A ray is *valid* when it pierces both spheres going inward — the
        paper's point that "not all (s,t,u,v) combinations are valid, due to
        occlusion" of the inner sphere by itself.  Invalid rays get NaN
        angles.

        Returns ``(s, t, u, v, valid)`` where (s, t) are inner-sphere and
        (u, v) outer-sphere (theta, phi) angles.
        """
        o = np.asarray(origins, dtype=np.float64)
        d = np.asarray(dirs, dtype=np.float64)
        t_in, hit_in = self.intersect_sphere(o, d, self.r_inner)
        t_out, hit_out = self.intersect_sphere(o, d, self.r_outer)
        valid = hit_in & hit_out
        nan = np.full(o.shape[0], np.nan)
        if not valid.any():
            return nan, nan.copy(), nan.copy(), nan.copy(), valid
        p_in = o[valid] + t_in[valid, None] * d[valid]
        p_out = o[valid] + t_out[valid, None] * d[valid]
        s_ang = nan.copy()
        t_ang = nan.copy()
        u_ang = nan.copy()
        v_ang = nan.copy()
        s_ang[valid], t_ang[valid] = cartesian_to_angles(p_in)
        u_ang[valid], v_ang[valid] = cartesian_to_angles(p_out)
        return s_ang, t_ang, u_ang, v_ang, valid

    def project_rays(
        self, origins: np.ndarray, dirs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Synthesis fast path: inner hit *points* plus outer angles.

        Returns ``(p_in, u, v, valid)`` where ``p_in`` is the (N, 3) array
        of inner-sphere entry points (garbage where invalid), and (u, v) the
        outer-sphere entry angles.  Skips the inner-sphere angle conversion
        that :meth:`ray_to_stuv` performs, and exploits a shared ray origin
        (a pinhole camera) to collapse the intersection quadratic's constant
        term to a scalar.
        """
        o = np.asarray(origins, dtype=np.float64)
        d = np.asarray(dirs, dtype=np.float64)
        n = o.shape[0]
        shared = n > 1 and (o[0] == o).all()
        if shared:
            eye = o[0]
            b = d @ eye
            c_in = float(eye @ eye) - self.r_inner**2
            c_out = float(eye @ eye) - self.r_outer**2
        else:
            b = np.einsum("ij,ij->i", o, d)
            oo = np.einsum("ij,ij->i", o, o)
            c_in = oo - self.r_inner**2
            c_out = oo - self.r_outer**2
        disc_in = b * b - c_in
        disc_out = b * b - c_out
        valid = (disc_in >= 0.0) & (disc_out >= 0.0)
        sq_in = np.sqrt(np.where(valid, disc_in, 0.0))
        sq_out = np.sqrt(np.where(valid, disc_out, 0.0))
        t_in = -b - sq_in
        t_in = np.where(t_in >= 0.0, t_in, -b + sq_in)
        t_out = -b - sq_out
        t_out = np.where(t_out >= 0.0, t_out, -b + sq_out)
        valid &= (t_in >= 0.0) & (t_out >= 0.0)
        p_in = o + t_in[:, None] * d
        p_out = o + t_out[:, None] * d
        u, v = cartesian_to_angles(p_out)
        return p_in, u, v, valid

    def stuv_to_ray(
        self,
        s: np.ndarray,
        t: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Inverse mapping: the ray from outer point (u,v) to inner (s,t).

        Returns unit-direction rays originating on the outer sphere.
        """
        p_out = angles_to_cartesian(np.asarray(u), np.asarray(v), self.r_outer)
        p_in = angles_to_cartesian(np.asarray(s), np.asarray(t), self.r_inner)
        d = p_in - p_out
        n = np.linalg.norm(d, axis=-1, keepdims=True)
        if np.any(n == 0):
            raise ValueError("degenerate ray: coincident sphere points")
        return p_out, d / n

    def camera_fov_deg(self, margin: float = 1.02) -> float:
        """Field of view for a lattice camera to just cover the inner sphere.

        A camera on the outer sphere looking at the center sees the inner
        sphere under half-angle ``asin(r_inner / r_outer)``; ``margin``
        scales in a small safety border so bilinear taps near the silhouette
        stay inside the image.
        """
        half = np.arcsin(min(1.0, margin * self.r_inner / self.r_outer))
        return float(np.degrees(2.0 * half))

    def contains_viewpoint(self, point: np.ndarray) -> bool:
        """True if a viewpoint is outside the outer sphere (supported zone)."""
        return float(np.linalg.norm(np.asarray(point, float))) > self.r_outer

"""The paper's core contribution: spherical light fields organized into view
sets, with lossless compression, database generation and novel-view
synthesis by 4-D table lookup.
"""

from .build import BuildStats, LightFieldBuilder
from .compression import (
    CodecError,
    CompressionResult,
    DeltaZlibCodec,
    ZlibCodec,
    codec_for_payload,
)
from .database import DatabaseError, LightFieldDatabase
from .lattice import CameraLattice, ViewSetKey, parse_viewset_id
from .multifield import CellSynthesizer, FieldCell, MultiFieldAtlas
from .source import DatabaseSource, SyntheticSource, ViewSetSource
from .sphere import TwoSphere, angles_to_cartesian, cartesian_to_angles
from .synthesis import (
    DictProvider,
    LightFieldSynthesizer,
    SynthesisResult,
    ViewSetProvider,
)
from .viewset import ViewSet, ViewSetFormatError

__all__ = [
    "BuildStats",
    "CameraLattice",
    "CellSynthesizer",
    "CodecError",
    "FieldCell",
    "MultiFieldAtlas",
    "CompressionResult",
    "DatabaseError",
    "DatabaseSource",
    "DeltaZlibCodec",
    "DictProvider",
    "LightFieldBuilder",
    "LightFieldDatabase",
    "LightFieldSynthesizer",
    "SynthesisResult",
    "SyntheticSource",
    "TwoSphere",
    "ViewSetSource",
    "ViewSet",
    "ViewSetFormatError",
    "ViewSetKey",
    "ViewSetProvider",
    "ZlibCodec",
    "angles_to_cartesian",
    "cartesian_to_angles",
    "codec_for_payload",
    "parse_viewset_id",
]

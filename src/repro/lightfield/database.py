"""The light field database (LFD): compressed view sets + size accounting.

"The size of the light field database only depends on the number of sample
views taken and the pixel resolution of each sample view" — this container
tracks exactly those numbers per view set (raw and compressed), which is what
Figure 7 plots, and offers directory persistence so a generated database can
be re-used across experiment runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from .compression import CompressionResult, codec_for_payload
from .lattice import CameraLattice, ViewSetKey, parse_viewset_id
from .sphere import TwoSphere
from .viewset import ViewSet

__all__ = ["LightFieldDatabase", "DatabaseError"]


class DatabaseError(RuntimeError):
    """Missing view sets, corrupt directories, mismatched geometry."""


@dataclass
class _Entry:
    payload: bytes
    raw_size: int


class LightFieldDatabase:
    """Compressed view sets indexed by view-set key.

    Parameters
    ----------
    lattice:
        Camera lattice the view sets were rendered on.
    spheres:
        Two-sphere parameterization used.
    resolution:
        Sample-view resolution r.
    """

    def __init__(
        self,
        lattice: CameraLattice,
        spheres: TwoSphere,
        resolution: int,
        name: str = "lfd",
    ) -> None:
        if resolution < 1:
            raise ValueError("resolution must be positive")
        self.lattice = lattice
        self.spheres = spheres
        self.resolution = int(resolution)
        self.name = name
        self._entries: Dict[str, _Entry] = {}

    # ------------------------------------------------------------------
    # content
    # ------------------------------------------------------------------
    def add(self, key: ViewSetKey, result: CompressionResult) -> None:
        """Store a compressed view set under its key."""
        vid = self.lattice.viewset_id(key)
        self._entries[vid] = _Entry(
            payload=result.payload, raw_size=result.raw_size
        )

    def __contains__(self, key: ViewSetKey) -> bool:
        return self.lattice.viewset_id(key) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterator[ViewSetKey]:
        """All stored view-set keys."""
        return (parse_viewset_id(v) for v in self._entries)

    def payload(self, key: ViewSetKey) -> bytes:
        """The compressed wire payload for a view set."""
        vid = self.lattice.viewset_id(key)
        try:
            return self._entries[vid].payload
        except KeyError:
            raise DatabaseError(f"view set {vid} not in database") from None

    def get_viewset(self, key: ViewSetKey) -> ViewSet:
        """Decompress and return a view set (convenience for tests/examples)."""
        payload = self.payload(key)
        codec = codec_for_payload(payload)
        vs, _ = codec.decompress(payload)
        return vs

    # ------------------------------------------------------------------
    # size accounting (Figure 7's quantities)
    # ------------------------------------------------------------------
    def compressed_size(self, key: Optional[ViewSetKey] = None) -> int:
        """Compressed bytes of one view set, or of the whole database."""
        if key is not None:
            return len(self.payload(key))
        return sum(len(e.payload) for e in self._entries.values())

    def raw_size(self, key: Optional[ViewSetKey] = None) -> int:
        """Uncompressed bytes of one view set, or of the whole database."""
        if key is not None:
            vid = self.lattice.viewset_id(key)
            try:
                return self._entries[vid].raw_size
            except KeyError:
                raise DatabaseError(f"view set {vid} not in database") from None
        return sum(e.raw_size for e in self._entries.values())

    def compression_ratio(self) -> float:
        """Aggregate raw/compressed ratio across stored view sets."""
        c = self.compressed_size()
        if c == 0:
            return float("inf")
        return self.raw_size() / c

    def is_complete(self) -> bool:
        """True when every lattice view set is present."""
        rows, cols = self.lattice.n_viewsets
        return len(self._entries) == rows * cols

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> None:
        """Write an index.json plus one ``.lfvs`` file per view set."""
        d = Path(directory)
        d.mkdir(parents=True, exist_ok=True)
        index = {
            "name": self.name,
            "resolution": self.resolution,
            "lattice": {
                "n_theta": self.lattice.n_theta,
                "n_phi": self.lattice.n_phi,
                "l": self.lattice.l,
            },
            "spheres": {
                "r_inner": self.spheres.r_inner,
                "r_outer": self.spheres.r_outer,
            },
            "viewsets": {
                vid: {"raw_size": e.raw_size}
                for vid, e in self._entries.items()
            },
        }
        (d / "index.json").write_text(json.dumps(index, indent=1))
        for vid, e in self._entries.items():
            (d / f"{vid}.lfvs").write_bytes(e.payload)

    @classmethod
    def load(cls, directory: Union[str, Path]) -> LightFieldDatabase:
        """Load a database previously written by :meth:`save`."""
        d = Path(directory)
        try:
            index = json.loads((d / "index.json").read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise DatabaseError(f"cannot read index at {d}: {exc}") from exc
        lattice = CameraLattice(**index["lattice"])
        spheres = TwoSphere(**index["spheres"])
        db = cls(
            lattice, spheres, index["resolution"], index.get("name", "lfd")
        )
        for vid, meta in index["viewsets"].items():
            path = d / f"{vid}.lfvs"
            if not path.exists():
                raise DatabaseError(f"index names {vid} but {path} is missing")
            db._entries[vid] = _Entry(
                payload=path.read_bytes(), raw_size=int(meta["raw_size"])
            )
        return db

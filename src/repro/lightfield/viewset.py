"""View sets: the unit of light field storage and transmission.

A view set is the block of ``l × l`` sample views (each an ``r × r`` RGB
image) covering one 15°-by-15° window of the camera lattice.  It is what the
client agent requests, what depots store, and what zlib compresses — "the
smallest unit of network transmission we use".

The binary layout is a fixed little-endian header followed by the raw
``(l, l, r, r, 3)`` uint8 pixel block, so (de)serialization is a header pack
plus one ``tobytes``/``frombuffer`` — no per-pixel work.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["ViewSet", "ViewSetFormatError"]

_MAGIC = b"LFVS"
_VERSION = 1
# magic, version, vi, vj, l, r, flags, reserved
_HEADER = struct.Struct("<4sHhhHHHH")


class ViewSetFormatError(ValueError):
    """Raised when decoding bytes that are not a valid view set."""


@dataclass
class ViewSet:
    """An ``l × l`` block of ``r × r`` RGB sample views.

    Attributes
    ----------
    key:
        (vi, vj) view-set grid coordinates.
    images:
        ``(l, l, r, r, 3)`` uint8 array; ``images[a, b]`` is the sample view
        of lattice camera ``(vi*l + a, vj*l + b)``.
    """

    key: Tuple[int, int]
    images: np.ndarray

    def __post_init__(self) -> None:
        img = np.ascontiguousarray(self.images)
        if img.dtype != np.uint8:
            raise ValueError("view-set images must be uint8")
        if img.ndim != 5 or img.shape[0] != img.shape[1] or img.shape[4] != 3:
            raise ValueError(
                f"images must be (l, l, r, r, 3), got {img.shape}"
            )
        if img.shape[2] != img.shape[3]:
            raise ValueError("sample views must be square")
        self.images = img

    @property
    def l(self) -> int:
        """View-set edge length in cameras."""
        return self.images.shape[0]

    @property
    def resolution(self) -> int:
        """Sample-view resolution r (images are r × r)."""
        return self.images.shape[2]

    @property
    def nbytes(self) -> int:
        """Uncompressed pixel payload size."""
        return self.images.nbytes

    def view(self, a: int, b: int) -> np.ndarray:
        """The (r, r, 3) sample view at local offset (a, b) — zero copy."""
        if not (0 <= a < self.l and 0 <= b < self.l):
            raise IndexError(f"local view ({a}, {b}) outside l={self.l}")
        return self.images[a, b]

    def view_for_camera(self, i: int, j: int) -> np.ndarray:
        """The sample view for global lattice camera (i, j).

        Raises KeyError if the camera is not in this view set.
        """
        vi, vj = self.key
        a, b = i - vi * self.l, j - vj * self.l
        if not (0 <= a < self.l and 0 <= b < self.l):
            raise KeyError(f"camera ({i}, {j}) not in view set {self.key}")
        return self.images[a, b]

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to the LFVS wire format."""
        vi, vj = self.key
        header = _HEADER.pack(
            _MAGIC, _VERSION, vi, vj, self.l, self.resolution, 0, 0
        )
        return header + self.images.tobytes()

    @classmethod
    def from_bytes(cls, blob: bytes) -> ViewSet:
        """Decode the LFVS wire format; validates header and payload size."""
        if len(blob) < _HEADER.size:
            raise ViewSetFormatError("blob shorter than header")
        magic, version, vi, vj, l, r, _flags, _rsvd = _HEADER.unpack_from(blob)
        if magic != _MAGIC:
            raise ViewSetFormatError(f"bad magic {magic!r}")
        if version != _VERSION:
            raise ViewSetFormatError(f"unsupported version {version}")
        expected = l * l * r * r * 3
        payload = blob[_HEADER.size:]
        if len(payload) != expected:
            raise ViewSetFormatError(
                f"payload is {len(payload)} bytes, expected {expected}"
            )
        images = (
            np.frombuffer(payload, dtype=np.uint8)
            .reshape(l, l, r, r, 3)
            .copy()  # own the memory; blob may be a transient buffer
        )
        return cls(key=(vi, vj), images=images)

    @classmethod
    def payload_size(cls, l: int, r: int) -> int:
        """Uncompressed wire size for given l and r (header included)."""
        return _HEADER.size + l * l * r * r * 3

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ViewSet):
            return NotImplemented
        return self.key == other.key and np.array_equal(
            self.images, other.images
        )

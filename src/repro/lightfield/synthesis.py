"""Novel-view synthesis from resident view sets (the client's renderer).

"The rendering process of a light field database is simply a sequence of
table lookup operations" — this module implements those lookups, vectorized:

1. each novel-view ray is mapped to ``(s, t, u, v)`` via the two-sphere
   parameterization;
2. the lattice cameras surrounding ``(u, v)`` are found (bilinear in the
   camera lattice, phi-periodic);
3. the ray's inner-sphere point is *reprojected* into each sample view and
   the stored image is sampled there (bilinear in ``(s, t)``) — together the
   quadrilinear interpolation of the 4-D ray space the paper describes;
4. contributions blend; cameras whose view set is not resident drop out and
   the remaining weights renormalize, so a missing neighbor degrades
   smoothly instead of leaving holes.

Performance: all resident sample views a frame touches are gathered into a
per-frame *camera atlas* (one ``(K, r, r, 3)`` array plus ``(K, 3)`` basis
vectors), after which every ray/corner is pure fancy-indexed numpy — there is
no per-camera Python loop on the hot path.  The atlas is cached and reused
while the camera stays over the same view sets, which is exactly the locality
view sets exist to create.

Interpolation modes trade fidelity for speed, mirroring the paper's "table
lookup" fast path:

* ``"quadrilinear"`` — 4 cameras × 4 pixel taps (highest quality);
* ``"uv-nearest"``   — nearest camera, bilinear pixel taps (4 taps total);
* ``"nearest"``      — nearest camera, nearest pixel (1 tap, pure lookup).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Protocol, Set, Tuple

import numpy as np

from ..render.camera import Camera, look_at
from .lattice import CameraLattice, ViewSetKey
from .sphere import TwoSphere, angles_to_cartesian
from .viewset import ViewSet

__all__ = [
    "ViewSetProvider",
    "DictProvider",
    "SynthesisResult",
    "LightFieldSynthesizer",
]

_MODES = ("quadrilinear", "uv-nearest", "nearest")


class ViewSetProvider(Protocol):
    """Anything that can hand over resident view sets."""

    def get_resident(self, key: ViewSetKey) -> Optional[ViewSet]:
        """The view set if locally resident, else None (no I/O implied)."""
        ...


class DictProvider:
    """Trivial provider over a dict — used by tests and examples."""

    def __init__(self, viewsets: Dict[ViewSetKey, ViewSet]) -> None:
        self._viewsets = dict(viewsets)

    def get_resident(self, key: ViewSetKey) -> Optional[ViewSet]:
        return self._viewsets.get(key)

    def add(self, vs: ViewSet) -> None:
        """Insert/replace a view set."""
        self._viewsets[vs.key] = vs

    def remove(self, key: ViewSetKey) -> None:
        """Drop a view set if present."""
        self._viewsets.pop(key, None)


@dataclass
class SynthesisResult:
    """A synthesized frame plus diagnostics."""

    image: np.ndarray            # (H, W, 3) float32
    coverage: float              # fraction of valid rays with full support
    missing_keys: Set[ViewSetKey] = field(default_factory=set)


@dataclass
class _Atlas:
    """Per-frame gather tables for the cameras a render touches."""

    code_to_slot: Dict[int, int]
    slot_lut: np.ndarray  # (n_theta*n_phi,) intp, -1 where absent
    images: np.ndarray   # (K, r, r, 3) uint8
    eyes: np.ndarray     # (K, 3) float32
    rights: np.ndarray
    ups: np.ndarray
    forwards: np.ndarray
    present: np.ndarray  # (K,) bool — camera's view set was resident
    missing_keys: Set[ViewSetKey]


class LightFieldSynthesizer:
    """Renders novel views by 4-D lookup into resident view sets."""

    def __init__(
        self,
        lattice: CameraLattice,
        spheres: TwoSphere,
        resolution: int,
        provider: ViewSetProvider,
        background: float = 0.0,
        interpolation: str = "quadrilinear",
    ) -> None:
        if resolution < 1:
            raise ValueError("resolution must be positive")
        if interpolation not in _MODES:
            raise ValueError(
                f"interpolation must be one of {_MODES}, got {interpolation!r}"
            )
        self.lattice = lattice
        self.spheres = spheres
        self.resolution = int(resolution)
        self.provider = provider
        self.background = float(background)
        self.interpolation = interpolation
        self._tan_half = np.tan(np.radians(spheres.camera_fov_deg()) / 2.0)
        self._atlas: Optional[_Atlas] = None
        self._atlas_codes: FrozenSet[int] = frozenset()

    # ------------------------------------------------------------------
    def invalidate_cache(self) -> None:
        """Drop the camera atlas (call after residency changes)."""
        self._atlas = None
        self._atlas_codes = frozenset()

    def render(self, camera: Camera) -> SynthesisResult:
        """Synthesize the frame seen by ``camera``."""
        origins, dirs = camera.rays()
        colors, cov, missing = self.render_rays(origins, dirs)
        return SynthesisResult(
            image=colors.reshape(camera.height, camera.width, 3),
            coverage=cov,
            missing_keys=missing,
        )

    def render_rays(
        self, origins: np.ndarray, dirs: np.ndarray
    ) -> Tuple[np.ndarray, float, Set[ViewSetKey]]:
        """Synthesize arbitrary ray bundles.

        Returns ``(colors (N,3) float32, coverage, missing view-set keys)``.
        Coverage is the fraction of volume-intersecting rays whose blend
        had full weight support (1.0 when everything needed was resident).
        """
        origins = np.asarray(origins, dtype=np.float64)
        dirs = np.asarray(dirs, dtype=np.float64)
        n = len(origins)
        colors = np.full((n, 3), self.background, dtype=np.float32)
        p_in_all, u, v, valid = self.spheres.project_rays(origins, dirs)
        if not valid.any():
            return colors, 1.0, set()
        vidx = np.nonzero(valid)[0]
        p_in = p_in_all[vidx].astype(np.float32)

        corners = self._corner_cameras(u[vidx], v[vidx])
        corner_codes = [
            ci * self.lattice.n_phi + cj for ci, cj, _ in corners
        ]
        atlas = self._ensure_atlas(corner_codes)

        acc = np.zeros((len(vidx), 3), dtype=np.float32)
        wsum = np.zeros(len(vidx), dtype=np.float32)
        for (_ci, _cj, w), code in zip(corners, corner_codes):
            slots = atlas.slot_lut[code]
            ok = atlas.present[slots]
            if not ok.any():
                continue
            sel = np.nonzero(ok)[0]
            samples = self._sample_atlas(atlas, slots[sel], p_in[sel])
            wf = w[sel].astype(np.float32)
            acc[sel] += wf[:, None] * samples
            wsum[sel] += wf

        have = wsum > 1e-6
        out_valid = np.full(
            (len(vidx), 3), self.background, dtype=np.float32
        )
        out_valid[have] = acc[have] / wsum[have, None]
        colors[vidx] = out_valid
        coverage = float(np.mean(wsum > 0.999)) if len(vidx) else 1.0
        return colors, coverage, atlas.missing_keys

    # ------------------------------------------------------------------
    # lattice corner selection
    # ------------------------------------------------------------------
    def _corner_cameras(self, u: np.ndarray, v: np.ndarray):
        """(ci, cj, weight) triples for the configured interpolation mode."""
        fi, fj = self.lattice.continuous_index(u, v)
        if self.interpolation in ("uv-nearest", "nearest"):
            i = np.clip(np.rint(fi), 0, self.lattice.n_theta - 1).astype(
                np.intp
            )
            j = np.rint(fj).astype(np.intp) % self.lattice.n_phi
            return [(i, j, np.ones(len(fi)))]
        i0 = np.clip(np.floor(fi).astype(np.intp), 0,
                     self.lattice.n_theta - 1)
        i1 = np.minimum(i0 + 1, self.lattice.n_theta - 1)
        wi = np.clip(fi - i0, 0.0, 1.0)
        j0 = np.floor(fj).astype(np.intp) % self.lattice.n_phi
        j1 = (j0 + 1) % self.lattice.n_phi
        wj = np.clip(fj - np.floor(fj), 0.0, 1.0)
        return [
            (i0, j0, (1 - wi) * (1 - wj)),
            (i0, j1, (1 - wi) * wj),
            (i1, j0, wi * (1 - wj)),
            (i1, j1, wi * wj),
        ]

    # ------------------------------------------------------------------
    # atlas construction
    # ------------------------------------------------------------------
    def _ensure_atlas(self, corner_codes: List[np.ndarray]) -> _Atlas:
        """Fast-path atlas check: rebuild only if a new camera appears.

        Membership is tested through the cached LUT (no np.unique on the hot
        path); a single unknown code triggers a rebuild with the exact set.
        """
        atlas = self._atlas
        if atlas is not None:
            for code in corner_codes:
                if (atlas.slot_lut[code] < 0).any():
                    break
            else:
                return atlas
        codes = frozenset(
            int(c) for code in corner_codes for c in np.unique(code)
        )
        union = codes | self._atlas_codes
        # keep the atlas from growing without bound during a long session:
        # past ~2 view sets' worth of cameras, restart from what's needed now
        cap = 2 * self.lattice.l * self.lattice.l + 16
        return self._get_atlas(union if len(union) <= cap else codes)

    def _get_atlas(self, codes: FrozenSet[int]) -> _Atlas:
        if self._atlas is not None and codes <= self._atlas_codes:
            return self._atlas
        r = self.resolution
        code_list = sorted(codes)
        K = len(code_list)
        images = np.zeros((K, r, r, 3), dtype=np.uint8)
        eyes = np.zeros((K, 3), dtype=np.float32)
        rights = np.zeros((K, 3), dtype=np.float32)
        ups = np.zeros((K, 3), dtype=np.float32)
        forwards = np.zeros((K, 3), dtype=np.float32)
        present = np.zeros(K, dtype=bool)
        missing: Set[ViewSetKey] = set()
        viewset_cache: Dict[ViewSetKey, Optional[ViewSet]] = {}
        for slot, code in enumerate(code_list):
            i = code // self.lattice.n_phi
            j = code % self.lattice.n_phi
            key = self.lattice.viewset_of(i, j)
            if key not in viewset_cache:
                viewset_cache[key] = self.provider.get_resident(key)
            vs = viewset_cache[key]
            theta, phi = self.lattice.angles(i, j)
            eye = angles_to_cartesian(
                np.array(theta), np.array(phi), self.spheres.r_outer
            )
            up = np.array([0.0, 0.0, 1.0])
            if abs(np.cos(theta)) > 0.999:
                up = np.array([1.0, 0.0, 0.0])
            right, true_up, forward = look_at(eye, np.zeros(3), up)
            eyes[slot], rights[slot] = eye, right
            ups[slot], forwards[slot] = true_up, forward
            if vs is None:
                missing.add(key)
                continue
            img = vs.view_for_camera(i, j)
            if img.shape[0] != r:
                raise ValueError(
                    f"view set {key} resolution {img.shape[0]} != "
                    f"synthesizer resolution {r}"
                )
            images[slot] = img
            present[slot] = True
        slot_lut = np.full(
            self.lattice.n_theta * self.lattice.n_phi, -1, dtype=np.intp
        )
        for s_, c_ in enumerate(code_list):
            slot_lut[c_] = s_
        atlas = _Atlas(
            code_to_slot={c: s for s, c in enumerate(code_list)},
            slot_lut=slot_lut,
            images=images,
            eyes=eyes,
            rights=rights,
            ups=ups,
            forwards=forwards,
            present=present,
            missing_keys=missing,
        )
        self._atlas = atlas
        self._atlas_codes = codes
        return atlas

    # ------------------------------------------------------------------
    # vectorized reprojection + image sampling
    # ------------------------------------------------------------------
    def _sample_atlas(
        self, atlas: _Atlas, slots: np.ndarray, points: np.ndarray
    ) -> np.ndarray:
        """Reproject ``points`` into each ray's camera and sample its image."""
        rel = points - atlas.eyes[slots]
        z = np.einsum("ij,ij->i", rel, atlas.forwards[slots])
        z = np.maximum(z, np.float32(1e-9))
        inv = 1.0 / (z * np.float32(self._tan_half))
        x = np.einsum("ij,ij->i", rel, atlas.rights[slots]) * inv
        y = np.einsum("ij,ij->i", rel, atlas.ups[slots]) * inv
        r = self.resolution
        px = (x + 1.0) * (0.5 * r) - 0.5
        py = (1.0 - y) * (0.5 * r) - 0.5
        np.clip(px, 0.0, r - 1.0, out=px)
        np.clip(py, 0.0, r - 1.0, out=py)
        img = atlas.images
        if self.interpolation == "nearest":
            xi = np.rint(px).astype(np.intp)
            yi = np.rint(py).astype(np.intp)
            return img[slots, yi, xi].astype(np.float32) * np.float32(
                1.0 / 255.0
            )
        x0 = np.floor(px).astype(np.intp)
        y0 = np.floor(py).astype(np.intp)
        if r > 1:
            np.minimum(x0, r - 2, out=x0)
            np.minimum(y0, r - 2, out=y0)
        fx = (px - x0).astype(np.float32)[:, None]
        fy = (py - y0).astype(np.float32)[:, None]
        x1 = x0 + 1 if r > 1 else x0
        y1 = y0 + 1 if r > 1 else y0
        c00 = img[slots, y0, x0].astype(np.float32)
        c01 = img[slots, y0, x1].astype(np.float32)
        c10 = img[slots, y1, x0].astype(np.float32)
        c11 = img[slots, y1, x1].astype(np.float32)
        top = c00 + (c01 - c00) * fx
        bot = c10 + (c11 - c10) * fx
        return (top + (bot - top) * fy) * np.float32(1.0 / 255.0)

    # ------------------------------------------------------------------
    def required_viewsets(
        self, origins: np.ndarray, dirs: np.ndarray
    ) -> Set[ViewSetKey]:
        """Which view sets a ray bundle would touch (prefetch planning)."""
        _, _, u, v, valid = self.spheres.ray_to_stuv(
            np.asarray(origins, float), np.asarray(dirs, float)
        )
        keys: Set[ViewSetKey] = set()
        if not valid.any():
            return keys
        for ci, cj, _ in self._corner_cameras(u[valid], v[valid]):
            for code in np.unique(ci * self.lattice.n_phi + cj):
                keys.add(
                    self.lattice.viewset_of(
                        int(code) // self.lattice.n_phi,
                        int(code) % self.lattice.n_phi,
                    )
                )
        return keys

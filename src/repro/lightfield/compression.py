"""Lossless view-set compression.

The paper compresses every view set with zlib ("the lossless scheme zlib
[1]") and reports 5-7× ratios on negHip sample views; decompression time at
the client is a first-class cost in its latency accounting (Figure 8), so the
codec interface here reports wall-clock timings.

Two codecs are provided:

* :class:`ZlibCodec` — exactly the paper's scheme;
* :class:`DeltaZlibCodec` — an ablation: byte-wise delta between adjacent
  sample views inside the view set before zlib, exploiting the view
  coherence the view-set reorganization creates.  This is the "more
  efficient compression scheme" the paper suggests as an alternative.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .viewset import ViewSet

__all__ = ["CompressionResult", "ZlibCodec", "DeltaZlibCodec", "CodecError"]


class CodecError(ValueError):
    """Raised when decoding fails or codec tags mismatch."""


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of compressing one view set.

    ``level`` records the zlib effort level the payload was produced with,
    so benchmark sweeps over the speed/ratio tradeoff can label results
    without keeping the codec object around; -1 means "not applicable".
    """

    payload: bytes
    raw_size: int
    compressed_size: int
    compress_seconds: float
    level: int = -1

    @property
    def ratio(self) -> float:
        """Raw / compressed size (the paper's 5-7×)."""
        if self.compressed_size == 0:
            return float("inf")
        return self.raw_size / self.compressed_size


class ZlibCodec:
    """zlib compression of the view-set wire format (paper's scheme)."""

    tag = b"Z1"

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise ValueError("zlib level must be 0..9")
        self.level = level

    def compress(self, viewset: ViewSet) -> CompressionResult:
        """Compress a view set; returns payload + accounting."""
        raw = viewset.to_bytes()
        t0 = time.perf_counter()
        body = zlib.compress(raw, self.level)
        dt = time.perf_counter() - t0
        payload = self.tag + body
        return CompressionResult(
            payload=payload,
            raw_size=len(raw),
            compressed_size=len(payload),
            compress_seconds=dt,
            level=self.level,
        )

    def decompress(self, payload: bytes) -> Tuple[ViewSet, float]:
        """Decode a payload; returns (view set, decompress wall seconds)."""
        if payload[:2] != self.tag:
            raise CodecError(f"payload is not {self.tag!r}-coded")
        t0 = time.perf_counter()
        try:
            raw = zlib.decompress(payload[2:])
        except zlib.error as exc:
            raise CodecError(f"zlib decode failed: {exc}") from exc
        vs = ViewSet.from_bytes(raw)
        return vs, time.perf_counter() - t0


class DeltaZlibCodec:
    """Delta-predict adjacent sample views, then zlib.

    Within a view set the l² sample views differ by a 2.5° camera rotation,
    so adjacent views are highly correlated; storing view[k] - view[k-1]
    (mod 256) concentrates byte values near zero and compresses better at
    the cost of a vectorized add on decode.
    """

    tag = b"D1"

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise ValueError("zlib level must be 0..9")
        self.level = level

    def compress(self, viewset: ViewSet) -> CompressionResult:
        raw_len = len(viewset.to_bytes())
        t0 = time.perf_counter()
        flat = viewset.images.reshape(
            viewset.l * viewset.l, -1
        )  # one row per sample view
        delta = flat.copy()
        delta[1:] = flat[1:] - flat[:-1]  # uint8 wraparound is mod-256
        header = np.array(
            [viewset.key[0], viewset.key[1], viewset.l, viewset.resolution],
            dtype=np.int32,
        ).tobytes()
        body = zlib.compress(header + delta.tobytes(), self.level)
        dt = time.perf_counter() - t0
        payload = self.tag + body
        return CompressionResult(
            payload=payload,
            raw_size=raw_len,
            compressed_size=len(payload),
            compress_seconds=dt,
            level=self.level,
        )

    def decompress(self, payload: bytes) -> Tuple[ViewSet, float]:
        if payload[:2] != self.tag:
            raise CodecError(f"payload is not {self.tag!r}-coded")
        t0 = time.perf_counter()
        try:
            raw = zlib.decompress(payload[2:])
        except zlib.error as exc:
            raise CodecError(f"zlib decode failed: {exc}") from exc
        if len(raw) < 16:
            raise CodecError("truncated delta payload")
        vi, vj, l, r = np.frombuffer(raw[:16], dtype=np.int32)
        expected = l * l * r * r * 3
        if len(raw) - 16 != expected:
            raise CodecError(
                f"delta payload is {len(raw) - 16} bytes, expected {expected}"
            )
        delta = np.frombuffer(raw[16:], dtype=np.uint8).reshape(l * l, -1)
        flat = np.cumsum(delta.astype(np.uint64), axis=0).astype(np.uint8)
        images = flat.reshape(l, l, r, r, 3)
        vs = ViewSet(key=(int(vi), int(vj)), images=images)
        return vs, time.perf_counter() - t0


def codec_for_payload(payload: bytes):
    """Instantiate the codec matching a payload's tag byte-pair."""
    tag = payload[:2]
    if tag == ZlibCodec.tag:
        return ZlibCodec()
    if tag == DeltaZlibCodec.tag:
        return DeltaZlibCodec()
    raise CodecError(f"unknown codec tag {tag!r}")

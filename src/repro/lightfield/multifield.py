"""Interior navigation with multiple light fields (Section 3.2 extension).

A single two-sphere light field only supports viewpoints *outside* its outer
sphere: "A light field database so constructed can only support 'replaying'
the external views of a volume.  To allow user navigation through the
interior of a volume, multiple light field databases are needed [16], but
the same framework for remote visualization can be reused."

This module implements that extension: the volume's interior is covered by a
grid of **field cells**, each a complete spherical light field centered at a
different point with a small outer sphere.  A viewpoint inside the dataset
is outside most cells' outer spheres; the browser picks the nearest
*supporting* cell for the current view and renders through its synthesizer
(with ray origins translated into the cell's frame).  Cell view sets reuse
the entire streaming stack — their ids are namespaced per cell, so the DVS,
depots, prefetching and staging all work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..render.camera import Camera
from .lattice import CameraLattice, ViewSetKey
from .sphere import TwoSphere
from .synthesis import LightFieldSynthesizer, SynthesisResult, ViewSetProvider

__all__ = ["FieldCell", "MultiFieldAtlas", "CellSynthesizer"]


@dataclass(frozen=True)
class FieldCell:
    """One light field shell positioned inside the dataset."""

    name: str
    center: Tuple[float, float, float]
    spheres: TwoSphere

    def supports(self, eye: np.ndarray) -> bool:
        """True if a viewpoint lies in this cell's supported zone."""
        d = float(np.linalg.norm(np.asarray(eye, float) - self.center))
        return d > self.spheres.r_outer

    def distance_from(self, eye: np.ndarray) -> float:
        """Distance from a viewpoint to the cell center."""
        return float(np.linalg.norm(np.asarray(eye, float) - self.center))

    def namespaced_id(self, lattice: CameraLattice, key: ViewSetKey) -> str:
        """A DVS/exNode id unique across cells."""
        return f"{self.name}:{lattice.viewset_id(key)}"


class CellSynthesizer:
    """A synthesizer bound to one cell: translates rays into cell frame."""

    def __init__(
        self,
        cell: FieldCell,
        lattice: CameraLattice,
        resolution: int,
        provider: ViewSetProvider,
        background: float = 0.0,
        interpolation: str = "quadrilinear",
    ) -> None:
        self.cell = cell
        self._inner = LightFieldSynthesizer(
            lattice, cell.spheres, resolution, provider,
            background=background, interpolation=interpolation,
        )

    @property
    def synthesizer(self) -> LightFieldSynthesizer:
        """The underlying origin-centered synthesizer."""
        return self._inner

    def render(self, camera: Camera) -> SynthesisResult:
        """Render a frame with ray origins shifted into the cell's frame."""
        origins, dirs = camera.rays()
        shifted = origins - np.asarray(self.cell.center, float)
        colors, cov, missing = self._inner.render_rays(shifted, dirs)
        return SynthesisResult(
            image=colors.reshape(camera.height, camera.width, 3),
            coverage=cov,
            missing_keys=missing,
        )

    def required_viewsets(self, camera: Camera):
        """View sets this camera needs from this cell."""
        origins, dirs = camera.rays()
        shifted = origins - np.asarray(self.cell.center, float)
        return self._inner.required_viewsets(shifted, dirs)


class MultiFieldAtlas:
    """A collection of field cells covering a dataset's interior."""

    def __init__(self, cells: Sequence[FieldCell]) -> None:
        if not cells:
            raise ValueError("atlas needs at least one cell")
        names = [c.name for c in cells]
        if len(set(names)) != len(names):
            raise ValueError("cell names must be unique")
        self.cells: List[FieldCell] = list(cells)

    @classmethod
    def grid(
        cls,
        extent: float,
        cells_per_axis: int,
        r_outer_fraction: float = 0.45,
        inner_fraction: float = 0.5,
    ) -> MultiFieldAtlas:
        """A regular grid of cells tiling ``[-extent, extent]^3``.

        ``r_outer_fraction`` scales each cell's outer sphere relative to the
        half cell pitch: below 0.5 the supported zones of neighboring cells
        overlap along corridors, so a camera walking through the dataset is
        always outside at least one nearby cell.
        """
        if cells_per_axis < 1:
            raise ValueError("cells_per_axis must be >= 1")
        if not 0.0 < r_outer_fraction < 1.0:
            raise ValueError("r_outer_fraction must be in (0, 1)")
        pitch = 2.0 * extent / cells_per_axis
        half = pitch / 2.0
        r_outer = r_outer_fraction * pitch
        r_inner = inner_fraction * r_outer
        cells = []
        coords = [
            -extent + half + i * pitch for i in range(cells_per_axis)
        ]
        for ix, x in enumerate(coords):
            for iy, y in enumerate(coords):
                for iz, z in enumerate(coords):
                    cells.append(
                        FieldCell(
                            name=f"cell-{ix}-{iy}-{iz}",
                            center=(x, y, z),
                            spheres=TwoSphere(r_inner=r_inner,
                                              r_outer=r_outer),
                        )
                    )
        return cls(cells)

    def __len__(self) -> int:
        return len(self.cells)

    def cell_by_name(self, name: str) -> FieldCell:
        """Lookup by cell name; raises KeyError when absent."""
        for c in self.cells:
            if c.name == name:
                return c
        raise KeyError(f"no cell named {name!r}")

    def supporting_cells(self, eye: np.ndarray) -> List[FieldCell]:
        """All cells whose zone supports the viewpoint, nearest first."""
        ok = [c for c in self.cells if c.supports(eye)]
        ok.sort(key=lambda c: c.distance_from(eye))
        return ok

    def cell_for_viewpoint(
        self, eye: np.ndarray, look_dir: Optional[np.ndarray] = None
    ) -> Optional[FieldCell]:
        """The cell to browse from a viewpoint.

        The nearest supporting cell is chosen; with ``look_dir`` given,
        cells ahead of the viewer are preferred (dot product > 0), matching
        how an interior walkthrough looks at what is in front of it.
        """
        candidates = self.supporting_cells(eye)
        if not candidates:
            return None
        if look_dir is not None:
            d = np.asarray(look_dir, float)
            n = np.linalg.norm(d)
            if n > 0:
                d = d / n
                ahead = [
                    c for c in candidates
                    if (np.asarray(c.center) - eye) @ d > 0
                ]
                if ahead:
                    return ahead[0]
        return candidates[0]

    def handoff_sequence(
        self, path: np.ndarray
    ) -> List[Tuple[int, Optional[str]]]:
        """Cell handoffs along a camera path.

        Returns ``(path index, cell name)`` at every point where the chosen
        cell changes — the interior-navigation analogue of view-set boundary
        crossings, and therefore the unit the streaming layer prefetches.
        """
        out: List[Tuple[int, Optional[str]]] = []
        current: Optional[str] = "\0"  # sentinel different from any name
        pts = np.asarray(path, dtype=float)
        for i in range(len(pts)):
            look = pts[i + 1] - pts[i] if i + 1 < len(pts) else None
            cell = self.cell_for_viewpoint(pts[i], look)
            name = cell.name if cell is not None else None
            if name != current:
                out.append((i, name))
                current = name
        return out

"""Cursor-movement traces driving the streaming experiments.

The paper orchestrates every experiment with "a standard list of cursor
movements" whose 58 view-set requests form the x-axis of Figures 8-12.  A
:class:`CursorTrace` is a deterministic sequence of timed view angles; the
standard trace is a seeded smooth random walk over the view sphere, scaled so
it crosses exactly the requested number of view-set boundaries.

Trace speed is the experiment's independent variable for the Quality
Guaranteed Rate (QGR) analysis: :func:`scaled` re-times the same spatial path
at a different angular velocity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from ..lightfield.lattice import CameraLattice, ViewSetKey

__all__ = ["CursorSample", "CursorTrace", "standard_trace"]


@dataclass(frozen=True)
class CursorSample:
    """One cursor position: simulation time and view angles."""

    time: float
    theta: float
    phi: float


@dataclass
class CursorTrace:
    """A timed sequence of cursor positions."""

    samples: List[CursorSample]

    def __post_init__(self) -> None:
        for a, b in zip(self.samples, self.samples[1:]):
            if b.time < a.time:
                raise ValueError("trace timestamps must be non-decreasing")

    def __iter__(self) -> Iterator[CursorSample]:
        return iter(self.samples)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def duration(self) -> float:
        """Time of the last sample."""
        return self.samples[-1].time if self.samples else 0.0

    def viewset_accesses(self, lattice: CameraLattice) -> List[ViewSetKey]:
        """The distinct view-set entries the trace produces, in order.

        Consecutive samples inside the same view set collapse to one entry;
        re-entering a previously visited view set counts again (the client
        may have evicted it).
        """
        out: List[ViewSetKey] = []
        current = None
        for s in self.samples:
            key = lattice.viewset_containing(s.theta, s.phi)
            if key != current:
                out.append(key)
                current = key
        return out

    def scaled(self, speed: float) -> CursorTrace:
        """The same spatial path at ``speed``× the angular velocity."""
        if speed <= 0:
            raise ValueError("speed must be positive")
        return CursorTrace(
            samples=[
                CursorSample(time=s.time / speed, theta=s.theta, phi=s.phi)
                for s in self.samples
            ]
        )

    def shifted(self, dt: float) -> CursorTrace:
        """The same path starting ``dt`` seconds later (staggered clients)."""
        if dt < 0:
            raise ValueError("shift must be non-negative")
        return CursorTrace(
            samples=[
                CursorSample(time=s.time + dt, theta=s.theta, phi=s.phi)
                for s in self.samples
            ]
        )


def standard_trace(
    lattice: CameraLattice,
    n_accesses: int = 58,
    step_period: float = 0.35,
    seed: int = 7,
    heading_noise: float = 0.55,
    dwell_steps: Tuple[int, int] = (4, 10),
    sweep_steps: Tuple[int, int] = (2, 6),
    max_samples: int = 100_000,
) -> CursorTrace:
    """The orchestrated standard trace: exactly ``n_accesses`` view-set entries.

    A *bursty* momentum walk on (theta, phi), seeded and deterministic,
    mimicking human examination behaviour: the cursor **dwells** inside a
    view set (small slow movements while the user studies the view), then
    **sweeps** — a fast decisive motion crossing one or more view-set
    boundaries.  Reactive prefetching has little lead time on sweep entries
    while long-horizon staging has the dwell periods to pre-position — the
    asymmetry the paper's Case 2 / Case 3 contrast rides on.

    Samples are emitted every ``step_period`` seconds until the walk has
    entered ``n_accesses`` view sets (counting the initial one).
    """
    if n_accesses < 1:
        raise ValueError("n_accesses must be >= 1")
    rng = np.random.default_rng(seed)
    # start mid-band, away from the poles
    theta = np.pi * 0.5 + rng.uniform(-0.2, 0.2)
    phi = rng.uniform(0, 2 * np.pi)
    window = lattice.l * lattice.theta_step
    dwell_speed = 0.06 * window   # examining: stays inside the view set
    sweep_speed = 0.55 * window   # decisive motion: crosses in ~2 steps
    heading = rng.uniform(0, 2 * np.pi)

    samples: List[CursorSample] = []
    accesses = 0
    current = None
    t = 0.0
    lo = 1.5 * lattice.theta_step
    hi = np.pi - 1.5 * lattice.theta_step
    mode_sweep = False
    mode_left = int(rng.integers(*dwell_steps))
    for _ in range(max_samples):
        key = lattice.viewset_containing(theta, phi)
        if key != current:
            accesses += 1
            current = key
        samples.append(CursorSample(time=t, theta=theta, phi=phi))
        if accesses >= n_accesses:
            break
        if mode_left <= 0:
            mode_sweep = not mode_sweep
            mode_left = int(
                rng.integers(*(sweep_steps if mode_sweep else dwell_steps))
            )
            if mode_sweep:
                # a sweep picks a fresh decisive direction
                heading = rng.uniform(0, 2 * np.pi)
        mode_left -= 1
        speed = sweep_speed if mode_sweep else dwell_speed
        jitter = heading_noise * (0.3 if mode_sweep else 1.0)
        heading += rng.normal(scale=jitter)
        theta_new = theta + speed * np.cos(heading)
        if not lo <= theta_new <= hi:
            heading = -heading  # bounce off the polar caps
            theta_new = np.clip(theta_new, lo, hi)
        theta = theta_new
        phi = (phi + speed * np.sin(heading)) % (2 * np.pi)
        t += step_period
    else:
        raise RuntimeError(
            f"trace did not reach {n_accesses} accesses in {max_samples} "
            "samples"
        )
    return CursorTrace(samples=samples)

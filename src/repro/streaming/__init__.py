"""The LoN-Enabled Browser of Image Based Databases: streaming model,
client/agent/server roles, DVS name service, prefetching and aggressive
two-stage staging, plus the session harness for the paper's Cases 1-3.
"""

from .agent import AgentStats, ClientAgent, HIT_LATENCY
from .client import Client
from .dvs import DVSResult, DVSServer
from .metrics import AccessRecord, AccessSource, SessionMetrics
from .multiclient import (
    MultiClientConfig,
    MultiClientResult,
    MultiClientRig,
    build_multiclient_rig,
    run_multiclient_session,
)
from .prefetch import (
    AllNeighborsPolicy,
    NoPrefetchPolicy,
    PrefetchPolicy,
    QuadrantPolicy,
    policy_by_name,
)
from .server import GenerationRequest, ServerAgent
from .session import SessionConfig, SessionRig, build_rig, run_session
from .staging import StagingPump, StagingStats
from .timevarying import (
    TemporalClient,
    TimeVaryingSource,
    parse_temporal_vid,
    temporal_vid,
)
from .trace import CursorSample, CursorTrace, standard_trace
from .zoom import ZoomOverlay, parse_zoom_vid, zoom_vid

__all__ = [
    "AccessRecord",
    "AccessSource",
    "AgentStats",
    "AllNeighborsPolicy",
    "Client",
    "ClientAgent",
    "CursorSample",
    "CursorTrace",
    "DVSResult",
    "DVSServer",
    "GenerationRequest",
    "HIT_LATENCY",
    "MultiClientConfig",
    "MultiClientResult",
    "MultiClientRig",
    "NoPrefetchPolicy",
    "PrefetchPolicy",
    "QuadrantPolicy",
    "ServerAgent",
    "SessionConfig",
    "SessionMetrics",
    "SessionRig",
    "StagingPump",
    "StagingStats",
    "TemporalClient",
    "TimeVaryingSource",
    "build_multiclient_rig",
    "build_rig",
    "parse_temporal_vid",
    "run_multiclient_session",
    "policy_by_name",
    "run_session",
    "standard_trace",
    "temporal_vid",
    "ZoomOverlay",
    "parse_zoom_vid",
    "zoom_vid",
]

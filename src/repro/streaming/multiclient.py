"""Multi-client session harness: N browsing clients on one depot fleet.

The paper's premise is that logistical networking makes light field browsing
practical on *shared* infrastructure — depots provisioned inside the network
serve many consumers at once (Section 3.5 explicitly allows one client agent
per console and several consoles per LAN).  This harness instantiates N
independent browsing clients — each with its own console node, client agent,
cache, cursor trace, and (case 3) staging pump — sharing one simulated
network, one LAN + WAN depot fleet, one DVS, one server agent, and one
:class:`~repro.lon.scheduler.TransferScheduler`.

Because every agent routes transfers through the shared scheduler's in-flight
registry, concurrent fetches of the same view set by different clients
coalesce exactly as same-agent requests do, and background staging competes
with every client's demand misses under one priority policy — the
many-consumer contention regime the single-client harness cannot produce.

Scale is the point: with dozens of clients the simulation core itself is the
bottleneck, which is what the incremental rebalancer in
:mod:`repro.lon.network` (``SessionConfig.network_rebalance``) and the
compacting event queue are for.  ``benchmarks/bench_text_multiclient.py``
measures both arms on this harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..lightfield.source import ViewSetSource
from ..lon.ibp import Depot
from ..lon.lbone import LBone
from ..lon.lors import LoRS
from ..lon.network import Network
from ..lon.scheduler import TransferScheduler
from ..lon.simtime import EventQueue
from ..obs.metrics import MetricsRegistry
from ..obs.samplers import PeriodicSampler, standard_samplers
from ..obs.tracer import Tracer
from .agent import ClientAgent
from .client import Client
from .dvs import DVSServer
from .metrics import SessionMetrics
from .prefetch import policy_by_name
from .server import ServerAgent
from .session import SessionConfig
from .staging import StagingPump
from .trace import CursorTrace, standard_trace

__all__ = [
    "MultiClientConfig",
    "MultiClientRig",
    "MultiClientResult",
    "build_multiclient_rig",
    "run_multiclient_session",
]


@dataclass
class MultiClientConfig:
    """An N-client experiment: one base session config, fanned out.

    Each client ``i`` runs the standard cursor trace with seed
    ``base.trace_seed + i * seed_stride``, time-shifted by
    ``i * start_stagger`` seconds so arrivals ramp instead of stampeding
    (stagger 0 reproduces a synchronized start).
    """

    base: SessionConfig = field(default_factory=SessionConfig)
    n_clients: int = 8
    #: per-client trace-seed offset; 0 makes every client walk the same path
    seed_stride: int = 101
    #: per-client start delay in seconds
    start_stagger: float = 1.0
    #: global index of this rig's first client.  Sharded runs
    #: (:mod:`repro.lon.shard`) partition one logical fleet across
    #: several rigs; offsetting names, trace seeds and start stagger
    #: by the global index keeps every client's identity and timing
    #: identical to its single-rig incarnation.
    client_index_base: int = 0
    #: metric namespace for this rig's registry (e.g. ``"shard3"``): every
    #: gauge/histogram name is prefixed at the factory, so telemetry from
    #: many rigs merges without collisions.  Empty = unnamespaced.
    obs_namespace: str = ""
    #: fraction of clients (tenths granularity) whose console + agent hang
    #: off a second campus switch (``xs-switch``) reached over its own
    #: backbone uplink instead of the department LAN.  Client ``g`` crosses
    #: iff ``(g % 10) < round(fraction * 10)``, so the assignment depends
    #: only on the *global* index — sharded runs see the same split.  0.0
    #: adds no nodes or links (bit-identical to the classic topology).
    cross_shard_fraction: float = 0.0
    #: backbone uplink calibration for the ``xs-switch`` ↔ ``wan-router``
    #: link (None = reuse ``base.wan_bandwidth`` / ``base.wan_latency``)
    backbone_bandwidth: Optional[float] = None
    backbone_latency: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if self.client_index_base < 0:
            raise ValueError("client_index_base must be non-negative")
        if self.start_stagger < 0:
            raise ValueError("start_stagger must be non-negative")
        if not 0.0 <= self.cross_shard_fraction <= 1.0:
            raise ValueError("cross_shard_fraction must be in [0, 1]")

    def crosses(self, g: int) -> bool:
        """Whether global client ``g`` attaches to the backbone switch."""
        return (g % 10) < int(round(self.cross_shard_fraction * 10))


@dataclass
class MultiClientRig:
    """All live components of a wired N-client session."""

    config: MultiClientConfig
    queue: EventQueue
    network: Network
    lbone: LBone
    lors: LoRS
    scheduler: TransferScheduler
    dvs: DVSServer
    server_agent: ServerAgent
    clients: List[Client]
    client_agents: List[ClientAgent]
    metrics: List[SessionMetrics]
    stagings: List[StagingPump]
    traces: List[CursorTrace]
    lan_depots: List[Depot]
    wan_depots: List[Depot]
    tracer: Optional[Tracer] = None
    obs: Optional[MetricsRegistry] = None
    samplers: List[PeriodicSampler] = field(default_factory=list)


@dataclass
class MultiClientResult:
    """Per-client metrics plus whole-run throughput accounting."""

    config: MultiClientConfig
    per_client: List[SessionMetrics]
    wall_seconds: float
    events_fired: int
    sim_seconds: float
    rebalance: Dict[str, int]
    queue_compactions: int
    #: shared-scheduler registry effects: cross-client dedup + promotions
    deduped_transfers: int = 0
    promoted_transfers: int = 0
    #: scheduler admission counters (batches flushed, submissions
    #: coalesced, scalar fallbacks) — proves the vectorized path is live
    admission: Dict[str, int] = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        """Simulation throughput: events fired per wall-clock second."""
        return self.events_fired / self.wall_seconds if self.wall_seconds else 0.0

    def aggregate(self) -> Dict[str, object]:
        """Fleet-level summary across every client's metrics."""
        accesses = [a for m in self.per_client for a in m.accesses]
        latencies = [a.total_latency for a in accesses]
        n = len(accesses)
        mean_latency = sum(latencies) / n if n else 0.0
        hits = sum(
            m.hit_rate() * len(m.accesses) for m in self.per_client
        )
        wan = sum(
            m.wan_rate() * len(m.accesses) for m in self.per_client
        )
        return {
            "n_clients": len(self.per_client),
            "rebalance": self.config.base.network_rebalance,
            "accesses": n,
            "mean_latency": round(mean_latency, 4),
            "hit_rate": round(hits / n, 3) if n else 0.0,
            "wan_rate": round(wan / n, 3) if n else 0.0,
            "wall_seconds": round(self.wall_seconds, 3),
            "sim_seconds": round(self.sim_seconds, 2),
            "events_fired": self.events_fired,
            "events_per_second": round(self.events_per_second, 1),
            "queue_compactions": self.queue_compactions,
            "deduped_transfers": self.deduped_transfers,
            "promoted_transfers": self.promoted_transfers,
            **{f"rebalance_{k}": v for k, v in self.rebalance.items()},
            **{f"admission_{k}": v for k, v in self.admission.items()},
        }


def build_multiclient_rig(
    source: ViewSetSource, config: MultiClientConfig
) -> MultiClientRig:
    """Wire N clients onto one shared fabric (no events run yet).

    Topology extends the single-client testbed: all consoles and agents
    (``client-i`` / ``agent-i``) hang off the department LAN switch, so N
    clients contend for the same WAN bottleneck — the shared-infrastructure
    regime the paper argues depots are for.
    """
    base = config.base
    queue = EventQueue()
    net = Network(queue, tcp_window=base.tcp_window,
                  rebalance=base.network_rebalance,
                  vectorize_threshold=base.network_vectorize_threshold)

    # --- shared topology --------------------------------------------------
    base_idx = config.client_index_base
    lan_hosts = [f"lan-depot-{i}" for i in range(base.n_lan_depots)]
    xs_hosts: List[str] = []
    for i in range(config.n_clients):
        g = base_idx + i
        side = xs_hosts if config.crosses(g) else lan_hosts
        side += [f"client-{g}", f"agent-{g}"]
    net.add_node("lan-switch")
    for h in lan_hosts:
        net.add_link(h, "lan-switch", base.lan_bandwidth, base.lan_latency)
    net.add_link("lan-switch", "wan-router", base.wan_bandwidth,
                 base.wan_latency)
    if xs_hosts:
        # crossing clients live on a second campus switch with its own
        # backbone uplink — the link every shard's crossing traffic shares,
        # so sharded runs must exchange its load at barriers (lon.shard)
        net.add_node("xs-switch")
        for h in xs_hosts:
            net.add_link(h, "xs-switch", base.lan_bandwidth,
                         base.lan_latency)
        net.add_link("xs-switch", "lan-switch", base.lan_bandwidth,
                     base.lan_latency)
        bb_bw = (config.backbone_bandwidth
                 if config.backbone_bandwidth is not None
                 else base.wan_bandwidth)
        bb_lat = (config.backbone_latency
                  if config.backbone_latency is not None
                  else base.wan_latency)
        net.add_link("xs-switch", "wan-router", bb_bw, bb_lat)
    wan_hosts = [f"ca-depot-{i}" for i in range(base.n_wan_depots)]
    wan_hosts += ["server", "dvs"]
    for h in wan_hosts:
        net.add_link(h, "wan-router", base.depot_access_bandwidth, 0.002)

    # --- shared storage fabric -------------------------------------------
    lbone = LBone(net)
    lan_depots = []
    for i in range(base.n_lan_depots):
        d = Depot(f"lan-depot-{i}", queue, capacity=base.depot_capacity)
        lbone.register(d, location="knoxville")
        lan_depots.append(d)
    wan_depots = []
    for i in range(base.n_wan_depots):
        d = Depot(f"ca-depot-{i}", queue, capacity=base.depot_capacity)
        lbone.register(d, location="california")
        wan_depots.append(d)

    tracer: Optional[Tracer] = None
    obs: Optional[MetricsRegistry] = None
    if base.tracing:
        tracer = Tracer(queue.clock, enabled=True)
        obs = MetricsRegistry(namespace=config.obs_namespace)
    scheduler = TransferScheduler(
        net, policy=base.scheduling_policy, tracer=tracer,
        vectorize_threshold=base.scheduler_vectorize_threshold,
    )
    lors = LoRS(queue, net, lbone, scheduler=scheduler)

    dvs = DVSServer(node="dvs")
    home_depots = lan_depots if base.case == 1 else wan_depots
    server_agent = ServerAgent(
        node="server",
        queue=queue,
        network=net,
        lors=lors,
        dvs=dvs,
        source=source,
        depots=home_depots,
        stripe_width=min(base.stripe_width, len(home_depots)),
        replicas=base.replicas,
        block_size=base.block_size,
        tracer=tracer,
    )
    server_agent.pre_distribute()

    # --- per-client consoles ----------------------------------------------
    clients: List[Client] = []
    agents: List[ClientAgent] = []
    metrics: List[SessionMetrics] = []
    stagings: List[StagingPump] = []
    traces: List[CursorTrace] = []
    policy_name = base.prefetch_policy
    for i in range(config.n_clients):
        g = base_idx + i
        m = SessionMetrics(
            case_name=f"case{base.case}-client{g}",
            resolution=source.resolution,
            scheduling_policy=base.scheduling_policy,
        )
        if tracer is not None:
            m.tracer = tracer
            m.obs = obs
        agent = ClientAgent(
            node=f"agent-{g}",
            queue=queue,
            network=net,
            lors=lors,
            dvs=dvs,
            dvs_node="dvs",
            lattice=source.lattice,
            server_agents={"server": server_agent},
            cache_bytes=base.agent_cache_bytes,
            max_streams=base.max_streams,
            prefetch_cancel_beyond=base.prefetch_cancel_beyond,
            tracer=tracer,
        )
        staging: Optional[StagingPump] = None
        if base.case == 3:
            staging = StagingPump(
                queue=queue,
                lors=lors,
                dvs=dvs,
                agent=agent,
                lan_depot=lan_depots[g % len(lan_depots)],
                lattice=source.lattice,
                max_concurrent=base.staging_concurrency,
                streams_per_copy=base.staging_streams,
                order=base.staging_order,
                cancel_beyond=base.staging_cancel_beyond,
                tracer=tracer,
            )
            stagings.append(staging)
        client = Client(
            node=f"client-{g}",
            queue=queue,
            network=net,
            agent=agent,
            lattice=source.lattice,
            metrics=m,
            resident_capacity=base.resident_capacity,
            policy=policy_by_name(policy_name),
            cpu_scale=base.cpu_scale,
            cpu_seconds_per_byte=base.cpu_seconds_per_byte,
            on_cursor=(staging.update_cursor if staging is not None
                       else None),
            tracer=tracer,
        )
        trace = standard_trace(
            source.lattice,
            n_accesses=base.n_accesses,
            step_period=base.step_period,
            seed=base.trace_seed + g * config.seed_stride,
            heading_noise=base.heading_noise,
        ).shifted(g * config.start_stagger)
        clients.append(client)
        agents.append(agent)
        metrics.append(m)
        traces.append(trace)

    samplers: List[PeriodicSampler] = []
    if tracer is not None and obs is not None:
        samplers = standard_samplers(
            queue, tracer, obs,
            network=net,
            scheduler=scheduler,
            depots=lan_depots + wan_depots,
            agent=agents,
            period=base.sample_period,
        )
    return MultiClientRig(
        config=config,
        queue=queue,
        network=net,
        lbone=lbone,
        lors=lors,
        scheduler=scheduler,
        dvs=dvs,
        server_agent=server_agent,
        clients=clients,
        client_agents=agents,
        metrics=metrics,
        stagings=stagings,
        traces=traces,
        lan_depots=lan_depots,
        wan_depots=wan_depots,
        tracer=tracer,
        obs=obs,
        samplers=samplers,
    )


def run_multiclient_session(
    source: ViewSetSource,
    config: MultiClientConfig,
    settle_seconds: float = 60.0,
    rig_hook: Optional[Callable[[MultiClientRig], None]] = None,
) -> MultiClientResult:
    """Run a full N-client session and return per-client + fleet results.

    ``settle_seconds`` bounds how long after the last client's final cursor
    sample the simulation may drain outstanding fetches.  Wall time covers
    the simulation loop only (not rig construction), which is what the
    scale benchmark compares across rebalance arms.
    """
    rig = build_multiclient_rig(source, config)
    if rig_hook is not None:
        rig_hook(rig)
    # synthesize (and cache) every payload up front: dataset generation is
    # not simulation work and must not pollute the wall-time measurement
    for key in source.lattice.all_viewsets():
        source.payload(key)
    for staging in rig.stagings:
        staging.start()
    for sampler in rig.samplers:
        sampler.start()
    for client, trace in zip(rig.clients, rig.traces):
        client.schedule_trace(trace)
    horizon = max(t.duration for t in rig.traces) + settle_seconds
    # measuring how fast the *simulator* runs, not simulated time: the
    # reading never feeds back into the event stream
    t0 = time.perf_counter()  # repro: allow[SIM001]
    rig.queue.run_until(horizon, max_events=200_000_000)
    for staging in rig.stagings:
        staging.stop()
    for sampler in rig.samplers:
        sampler.stop()
    rig.queue.run_until(horizon + settle_seconds, max_events=200_000_000)
    wall = time.perf_counter() - t0  # repro: allow[SIM001]
    if rig.tracer is not None:
        rig.tracer.finish_open()
    for m, agent, staging in zip(
        rig.metrics, rig.client_agents,
        rig.stagings if rig.stagings else [None] * len(rig.metrics),
    ):
        m.prefetch_used = agent.stats.prefetch_hits
        if staging is not None:
            m.staged_count = staging.stats.staged
            m.staged_bytes = staging.stats.bytes_staged
    stats = rig.network.stats
    return MultiClientResult(
        config=config,
        per_client=rig.metrics,
        wall_seconds=wall,
        events_fired=rig.queue.fired_total,
        sim_seconds=rig.queue.now,
        rebalance={
            "recomputes": stats.recomputes,
            "full_recomputes": stats.full_recomputes,
            "coalesced": stats.coalesced,
            "component_flows": stats.component_flows,
            "flows_rerated": stats.flows_rerated,
            "events_rescheduled": stats.events_rescheduled,
            "vectorized": stats.vectorized,
            "all_capped": stats.all_capped,
            "fast_rated": stats.fast_rated,
            "batched_flushes": stats.batched_flushes,
            "batch_flows": stats.batch_flows,
        },
        queue_compactions=rig.queue.compactions,
        deduped_transfers=rig.scheduler.registry.stats.deduped,
        promoted_transfers=rig.scheduler.registry.stats.promoted,
        admission={
            "batches_flushed": rig.scheduler.stats.batches_flushed,
            "submissions_coalesced":
                rig.scheduler.stats.submissions_coalesced,
            "scalar_fallbacks": rig.scheduler.stats.scalar_fallbacks,
        },
    )

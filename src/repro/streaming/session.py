"""Experiment harness: Cases 1, 2 and 3 of Section 4.2/4.3.

Builds the whole system over the simulated network and runs an orchestrated
cursor trace:

* **Case 1** — the LFD is stored on depots in the client's LAN ("really
  local area streaming ... the ideal case");
* **Case 2** — the LFD lives on three striped depots in California and is
  fetched across the WAN with client-agent prefetching only;
* **Case 3** — as Case 2, plus aggressive two-stage prestaging onto a LAN
  depot.

Topology (matching the paper's testbed): client + client agent + four LAN
depots on a 1 Gb/s department LAN; a WAN path to California (shared
bottleneck); three server depots + DVS + server agent at the remote site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..lightfield.source import ViewSetSource
from ..lon.ibp import Depot
from ..lon.lbone import LBone
from ..lon.lors import LoRS
from ..lon.network import REBALANCE_MODES, Network, gbps, mbps
from ..lon.scheduler import SCHEDULING_POLICIES, TransferScheduler
from ..lon.simtime import EventQueue
from ..obs.metrics import MetricsRegistry
from ..obs.samplers import PeriodicSampler, standard_samplers
from ..obs.tracer import Tracer
from .agent import ClientAgent
from .client import Client
from .dvs import DVSServer
from .metrics import SessionMetrics
from .prefetch import policy_by_name
from .server import ServerAgent
from .staging import StagingPump
from .trace import CursorTrace, standard_trace

__all__ = ["SessionConfig", "SessionRig", "run_session", "build_rig"]


@dataclass
class SessionConfig:
    """Everything that varies between experiment runs."""

    case: int = 3                      # 1, 2 or 3
    n_accesses: int = 58               # the paper's request count
    trace_seed: int = 7
    step_period: float = 0.6           # seconds between cursor samples
    heading_noise: float = 0.9         # cursor unpredictability (radians/step)
    trace: Optional[CursorTrace] = None  # override the standard trace

    # network calibration (defaults model the 2003 testbed)
    lan_bandwidth: float = gbps(1.0)
    lan_latency: float = 0.0002
    #: raw shared WAN path.  60 Mb/s calibrates staging so the whole
    #: database localizes within a session: nearly instantly relative to the
    #: cursor at 200² and over roughly half the trace at 500² — the paper's
    #: initial-phase contrast (1 access vs 33).
    wan_bandwidth: float = mbps(60.0)
    wan_latency: float = 0.035
    depot_access_bandwidth: float = mbps(100.0)
    #: single-flow TCP ceiling = window/RTT: ~14 Mb/s across the WAN with
    #: 2003-default windows, unconstrained on the LAN.  This asymmetry is
    #: why multi-stream staging beats client-driven fetching.
    tcp_window: Optional[float] = 128 * 1024

    # placement
    stripe_width: int = 3
    replicas: int = 1
    n_wan_depots: int = 3
    n_lan_depots: int = 4
    depot_capacity: int = 16 << 30

    # placement block size: one block per ~1 MB keeps 200² view sets to a
    # single WAN stream (the paper's observed ~1 s accesses) while larger
    # view sets stripe across several
    block_size: int = 1 << 20

    # agent / client
    agent_cache_bytes: Optional[int] = None
    max_streams: int = 4
    resident_capacity: int = 2
    cpu_scale: float = 1.0
    #: model decompression CPU as seconds/byte instead of measuring host
    #: wall time (None = measure).  Set for bit-reproducible runs — the
    #: determinism checker requires it.
    cpu_seconds_per_byte: Optional[float] = None
    prefetch_policy: str = "quadrant"

    # staging (case 3): concurrency x streams bounds aggressive-staging
    # flows; the default keeps foreground misses WAN-comparable during the
    # initial phase (the Section 4.3 contention observation) instead of
    # starving them outright
    staging_concurrency: int = 4
    staging_streams: int = 3
    staging_order: str = "proximity"

    # transfer scheduling (the interference ablation knob):
    #   "off"      — priority-blind equal sharing (the seed behaviour);
    #   "weighted" — weighted max-min fair shares by class (DEMAND 8 :
    #                PREFETCH 2 : STAGING 1 : MAINTENANCE 0.5);
    #   "strict"   — weighted + background flows sharing a link with a live
    #                demand flow are paused until it drains.
    scheduling_policy: str = "weighted"
    #: cancel in-flight staging copies farther than this grid distance from
    #: the cursor on a retarget (None = never cancel; progress is kept)
    staging_cancel_beyond: Optional[int] = None
    #: cancel in-flight prefetches farther than this grid distance from the
    #: cursor on a retarget (None = never cancel)
    prefetch_cancel_beyond: Optional[int] = 2
    #: record per-transfer lifecycle events on the session metrics
    record_transfer_events: bool = True
    #: enable end-to-end tracing + periodic samplers (repro.obs); off by
    #: default — the disabled tracer's overhead is a no-op method call
    tracing: bool = False
    #: sampler period in simulated seconds (link utilization, queue depths)
    sample_period: float = 0.5
    #: flow re-rating strategy (see repro.lon.network): "incremental"
    #: recomputes only the affected link/flow component per change;
    #: "batched" adds the array-dispatch flush on top of incremental;
    #: "full" is the O(flows × links) reference recompute
    network_rebalance: str = "incremental"
    #: component size (flows) at which a water-fill takes the numpy path
    #: instead of the scalar loop (forwarded to Network)
    network_vectorize_threshold: int = 24
    #: same-timestamp submission count at which the scheduler admits the
    #: batch through the vectorized plan instead of per-spec scalar
    #: bookkeeping (forwarded to TransferScheduler); bit-equal either way
    scheduler_vectorize_threshold: int = 6

    def __post_init__(self) -> None:
        if self.case not in (1, 2, 3):
            raise ValueError("case must be 1, 2 or 3")
        if self.scheduling_policy not in SCHEDULING_POLICIES:
            raise ValueError(
                f"scheduling_policy must be one of {SCHEDULING_POLICIES}"
            )
        if self.network_rebalance not in REBALANCE_MODES:
            raise ValueError(
                f"network_rebalance must be one of {REBALANCE_MODES}"
            )
        if self.network_vectorize_threshold < 2:
            raise ValueError("network_vectorize_threshold must be >= 2")
        if self.scheduler_vectorize_threshold < 2:
            raise ValueError("scheduler_vectorize_threshold must be >= 2")


@dataclass
class SessionRig:
    """All live components of a wired session (for tests and examples)."""

    config: SessionConfig
    queue: EventQueue
    network: Network
    lbone: LBone
    lors: LoRS
    dvs: DVSServer
    server_agent: ServerAgent
    client_agent: ClientAgent
    client: Client
    metrics: SessionMetrics
    staging: Optional[StagingPump]
    lan_depots: List[Depot]
    wan_depots: List[Depot]
    trace: CursorTrace
    tracer: Optional[Tracer] = None
    obs: Optional[MetricsRegistry] = None
    samplers: List[PeriodicSampler] = field(default_factory=list)


def build_rig(source: ViewSetSource, config: SessionConfig) -> SessionRig:
    """Wire every component for the configured case (no events run yet)."""
    queue = EventQueue()
    net = Network(queue, tcp_window=config.tcp_window,
                  rebalance=config.network_rebalance,
                  vectorize_threshold=config.network_vectorize_threshold)

    # --- topology -----------------------------------------------------
    lan_hosts = ["client", "agent"] + [
        f"lan-depot-{i}" for i in range(config.n_lan_depots)
    ]
    net.add_node("lan-switch")
    for h in lan_hosts:
        net.add_link(h, "lan-switch", config.lan_bandwidth,
                     config.lan_latency)
    net.add_link("lan-switch", "wan-router", config.wan_bandwidth,
                 config.wan_latency)
    wan_hosts = [f"ca-depot-{i}" for i in range(config.n_wan_depots)]
    wan_hosts += ["server", "dvs"]
    for h in wan_hosts:
        net.add_link(h, "wan-router", config.depot_access_bandwidth, 0.002)

    # --- storage fabric -------------------------------------------------
    lbone = LBone(net)
    lan_depots = []
    for i in range(config.n_lan_depots):
        d = Depot(f"lan-depot-{i}", queue, capacity=config.depot_capacity)
        lbone.register(d, location="knoxville")
        lan_depots.append(d)
    wan_depots = []
    for i in range(config.n_wan_depots):
        d = Depot(f"ca-depot-{i}", queue, capacity=config.depot_capacity)
        lbone.register(d, location="california")
        wan_depots.append(d)
    metrics = SessionMetrics(
        case_name=f"case{config.case}", resolution=source.resolution,
        scheduling_policy=config.scheduling_policy,
    )
    tracer: Optional[Tracer] = None
    obs: Optional[MetricsRegistry] = None
    if config.tracing:
        tracer = Tracer(queue.clock, enabled=True)
        obs = MetricsRegistry()
        metrics.tracer = tracer
        metrics.obs = obs
    scheduler = TransferScheduler(
        net,
        policy=config.scheduling_policy,
        on_event=(metrics.record_transfer_event
                  if config.record_transfer_events else None),
        tracer=tracer,
        vectorize_threshold=config.scheduler_vectorize_threshold,
    )
    lors = LoRS(queue, net, lbone, scheduler=scheduler)

    # --- name service + server ------------------------------------------
    dvs = DVSServer(node="dvs")
    home_depots = lan_depots if config.case == 1 else wan_depots
    server_agent = ServerAgent(
        node="server",
        queue=queue,
        network=net,
        lors=lors,
        dvs=dvs,
        source=source,
        depots=home_depots,
        stripe_width=min(config.stripe_width, len(home_depots)),
        replicas=config.replicas,
        block_size=config.block_size,
        tracer=tracer,
    )
    server_agent.pre_distribute()

    # --- client side ------------------------------------------------------
    client_agent = ClientAgent(
        node="agent",
        queue=queue,
        network=net,
        lors=lors,
        dvs=dvs,
        dvs_node="dvs",
        lattice=source.lattice,
        server_agents={"server": server_agent},
        cache_bytes=config.agent_cache_bytes,
        max_streams=config.max_streams,
        prefetch_cancel_beyond=config.prefetch_cancel_beyond,
        tracer=tracer,
    )
    staging: Optional[StagingPump] = None
    if config.case == 3:
        staging = StagingPump(
            queue=queue,
            lors=lors,
            dvs=dvs,
            agent=client_agent,
            lan_depot=lan_depots[0],
            lattice=source.lattice,
            max_concurrent=config.staging_concurrency,
            streams_per_copy=config.staging_streams,
            order=config.staging_order,
            cancel_beyond=config.staging_cancel_beyond,
            tracer=tracer,
        )
    policy = policy_by_name(config.prefetch_policy)
    client = Client(
        node="client",
        queue=queue,
        network=net,
        agent=client_agent,
        lattice=source.lattice,
        metrics=metrics,
        resident_capacity=config.resident_capacity,
        policy=policy,
        cpu_scale=config.cpu_scale,
        cpu_seconds_per_byte=config.cpu_seconds_per_byte,
        on_cursor=(staging.update_cursor if staging is not None else None),
        tracer=tracer,
    )
    trace = config.trace if config.trace is not None else standard_trace(
        source.lattice,
        n_accesses=config.n_accesses,
        step_period=config.step_period,
        seed=config.trace_seed,
        heading_noise=config.heading_noise,
    )
    samplers: List[PeriodicSampler] = []
    if tracer is not None and obs is not None:
        samplers = standard_samplers(
            queue, tracer, obs,
            network=net,
            scheduler=scheduler,
            depots=lan_depots + wan_depots,
            agent=client_agent,
            period=config.sample_period,
        )
    return SessionRig(
        config=config,
        queue=queue,
        network=net,
        lbone=lbone,
        lors=lors,
        dvs=dvs,
        server_agent=server_agent,
        client_agent=client_agent,
        client=client,
        metrics=metrics,
        staging=staging,
        lan_depots=lan_depots,
        wan_depots=wan_depots,
        trace=trace,
        tracer=tracer,
        obs=obs,
        samplers=samplers,
    )


def run_session(
    source: ViewSetSource, config: SessionConfig,
    settle_seconds: float = 60.0,
    rig_hook: Optional[Callable[[SessionRig], None]] = None,
) -> SessionMetrics:
    """Run one full orchestrated session and return its metrics.

    ``settle_seconds`` bounds how long after the last cursor sample the
    simulation may run to drain outstanding fetches; staging is stopped at
    the horizon so the event queue terminates.  ``rig_hook``, if given, is
    called with the wired :class:`SessionRig` before any event runs — the
    determinism checker uses it to attach event-stream observers.
    """
    rig = build_rig(source, config)
    if rig_hook is not None:
        rig_hook(rig)
    if rig.staging is not None:
        rig.staging.start()
    for sampler in rig.samplers:
        sampler.start()
    rig.client.schedule_trace(rig.trace)
    horizon = rig.trace.duration + settle_seconds
    rig.queue.run_until(horizon)
    if rig.staging is not None:
        rig.staging.stop()
        rig.metrics.staged_count = rig.staging.stats.staged
        rig.metrics.staged_bytes = rig.staging.stats.bytes_staged
    for sampler in rig.samplers:
        sampler.stop()
    rig.queue.run_until(horizon + settle_seconds)
    if rig.tracer is not None:
        rig.tracer.finish_open()
    rig.metrics.prefetch_used = rig.client_agent.stats.prefetch_hits
    sched = rig.lors.scheduler
    rig.metrics.deduped = sched.registry.stats.deduped
    rig.metrics.promoted_transfers = sched.registry.stats.promoted
    rig.metrics.cancelled_transfers = sched.stats.cancelled
    return rig.metrics

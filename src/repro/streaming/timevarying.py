"""Time-varying datasets (Section 5 future work).

"We will continue to develop remote visualization systems for flow fields
and time-varying simulations as well."  This module implements that
extension on the existing stack: each simulation timestep has its own light
field database; view-set ids are namespaced per timestep
(``t{k}:vs-{vi}-{vj}``), so the DVS, depots, LoRS and the client agent all
work unchanged.  The client plays time forward while the user browses, and
the prefetch policy gains a **temporal dimension**: alongside the spatial
quadrant neighbors of the current view, the *next timestep's* current view
set is prefetched — the analogue of double-buffering animation frames.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from ..lightfield.lattice import CameraLattice, ViewSetKey, parse_viewset_id
from ..lightfield.source import ViewSetSource
from ..lon.ibp import Depot
from ..lon.lors import LoRS
from ..lon.network import Network
from ..lon.scheduler import Priority
from ..lon.simtime import EventQueue
from .agent import ClientAgent
from .dvs import DVSServer
from .metrics import AccessRecord, AccessSource, SessionMetrics
from .trace import CursorTrace

__all__ = ["TimeVaryingSource", "temporal_vid", "parse_temporal_vid",
           "TemporalClient"]

_TVID_RE = re.compile(r"^t(\d+):(vs-\d+-\d+)$")


def temporal_vid(t: int, lattice: CameraLattice, key: ViewSetKey) -> str:
    """The namespaced id of view set ``key`` at timestep ``t``."""
    if t < 0:
        raise ValueError("timestep must be non-negative")
    return f"t{t}:{lattice.viewset_id(key)}"


def parse_temporal_vid(vid: str) -> Tuple[int, ViewSetKey]:
    """Inverse of :func:`temporal_vid`."""
    m = _TVID_RE.match(vid)
    if not m:
        raise ValueError(f"not a temporal view-set id: {vid!r}")
    return int(m.group(1)), parse_viewset_id(m.group(2))


class TimeVaryingSource:
    """A sequence of per-timestep view-set sources.

    All timesteps must share lattice geometry and resolution (the camera
    rig does not move between simulation dumps).
    """

    def __init__(self, sources: Sequence[ViewSetSource]) -> None:
        if not sources:
            raise ValueError("need at least one timestep")
        first = sources[0]
        for s in sources[1:]:
            if s.lattice != first.lattice or s.resolution != first.resolution:
                raise ValueError(
                    "all timesteps must share lattice and resolution"
                )
        self.sources: List[ViewSetSource] = list(sources)
        self.lattice = first.lattice
        self.spheres = first.spheres
        self.resolution = first.resolution

    @property
    def n_timesteps(self) -> int:
        """Number of simulation dumps."""
        return len(self.sources)

    def payload(self, t: int, key: ViewSetKey) -> bytes:
        """Compressed payload for (timestep, view set)."""
        if not 0 <= t < len(self.sources):
            raise IndexError(f"timestep {t} out of range")
        return self.sources[t].payload(key)

    def payload_for_vid(self, vid: str) -> bytes:
        """Payload lookup by namespaced id (used by server distribution)."""
        t, key = parse_temporal_vid(vid)
        return self.payload(t, key)

    def distribute(
        self, lors: LoRS, depots: Sequence[Depot], dvs: DVSServer,
        stripe_width: int = 3,
        block_size: int = 1 << 20, duration: float = 24 * 3600.0,
    ) -> int:
        """Pre-distribute every (timestep, view set) to depots + DVS.

        Returns the number of objects placed.  Offline, like
        :meth:`ServerAgent.pre_distribute`.
        """
        count = 0
        for t in range(self.n_timesteps):
            for key in self.lattice.all_viewsets():
                vid = temporal_vid(t, self.lattice, key)
                exnode = lors.place(
                    vid, self.payload(t, key), depots,
                    stripe_width=stripe_width, block_size=block_size,
                    duration=duration,
                    metadata={"timestep": str(t)},
                )
                dvs.register_exnode(vid, exnode)
                count += 1
        return count


class TemporalClient:
    """A playback client: the dataset animates while the user browses.

    Every ``playback_period`` simulated seconds the timestep advances; a
    view-set *access* happens whenever the (timestep, view set) pair the
    display needs changes — either because the user crossed a boundary or
    because the animation advanced.  Prefetch covers both axes: the spatial
    quadrant neighbors at the current timestep, plus the current view set
    at the next timestep.
    """

    def __init__(
        self,
        node: str,
        queue: EventQueue,
        network: Network,
        agent: ClientAgent,
        source: TimeVaryingSource,
        metrics: SessionMetrics,
        playback_period: float = 2.0,
        resident_capacity: int = 4,
        prefetch_spatial: bool = True,
        prefetch_temporal: bool = True,
    ) -> None:
        if playback_period <= 0:
            raise ValueError("playback_period must be positive")
        self.node = node
        self.queue = queue
        self.network = network
        self.agent = agent
        self.source = source
        self.metrics = metrics
        self.playback_period = playback_period
        self.resident_capacity = max(1, resident_capacity)
        self.prefetch_spatial = prefetch_spatial
        self.prefetch_temporal = prefetch_temporal
        self.timestep = 0
        self._theta: Optional[float] = None
        self._phi: Optional[float] = None
        self._current_vid: Optional[str] = None
        self._resident: Dict[str, bytes] = {}
        self._resident_order: List[str] = []
        self._outstanding: Dict[str, List[Tuple[int, float]]] = {}
        self._access_index = 0
        self._playing = False

    # ------------------------------------------------------------------
    def start_playback(self) -> None:
        """Begin advancing timesteps every ``playback_period`` seconds."""
        if self._playing:
            return
        self._playing = True
        self.queue.schedule_in(self.playback_period, self._tick, "playback")

    def _tick(self) -> None:
        if not self._playing:
            return
        if self.timestep + 1 < self.source.n_timesteps:
            self.timestep += 1
            self._refresh()
            self.queue.schedule_in(
                self.playback_period, self._tick, "playback"
            )
        else:
            self._playing = False  # animation finished

    def schedule_trace(self, trace: CursorTrace) -> None:
        """Drive the spatial cursor from a trace (as the base client)."""
        for s in trace:
            self.queue.schedule(
                s.time,
                lambda ss=s: self.handle_cursor(ss.theta, ss.phi),
                "cursor",
            )

    def handle_cursor(self, theta: float, phi: float) -> None:
        """Process a cursor move at the current timestep."""
        self._theta, self._phi = theta, phi
        self._refresh()

    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        if self._theta is None:
            return
        key = self.source.lattice.viewset_containing(self._theta, self._phi)
        vid = temporal_vid(self.timestep, self.source.lattice, key)
        if vid != self._current_vid:
            self._current_vid = vid
            self._access(vid)
        self._issue_prefetch(key)

    def _issue_prefetch(self, key: ViewSetKey) -> None:
        wanted: List[str] = []
        if self.prefetch_spatial:
            for nb in self.source.lattice.quadrant_neighbors(
                self._theta, self._phi
            ):
                wanted.append(
                    temporal_vid(self.timestep, self.source.lattice, nb)
                )
        if self.prefetch_temporal and (
            self.timestep + 1 < self.source.n_timesteps
        ):
            wanted.append(
                temporal_vid(self.timestep + 1, self.source.lattice, key)
            )
        fresh = [v for v in wanted
                 if v not in self._resident and v not in self._outstanding]
        if not fresh:
            return
        self.metrics.prefetch_issued += len(fresh)
        delay = self.network.path_latency(self.node, self.agent.node)
        for v in fresh:
            self.queue.schedule_in(
                delay,
                lambda vv=v: self.agent.request(
                    vv, lambda *a: None, prefetch=True
                ),
                "temporal-prefetch",
            )

    def _keep(self, vid: str, payload: bytes) -> None:
        if vid in self._resident:
            self._resident_order.remove(vid)
        self._resident[vid] = payload
        self._resident_order.append(vid)
        while len(self._resident_order) > self.resident_capacity:
            old = self._resident_order.pop(0)
            del self._resident[old]

    def _access(self, vid: str) -> None:
        self._access_index += 1
        index = self._access_index
        t0 = self.queue.now
        if vid in self._resident:
            self._resident_order.remove(vid)
            self._resident_order.append(vid)
            self.metrics.record(AccessRecord(
                index=index, viewset_id=vid,
                source=AccessSource.CLIENT_RESIDENT,
                request_time=t0, comm_latency=0.0,
                decompress_seconds=0.0, total_latency=1e-4,
            ))
            return
        pending = self._outstanding.get(vid)
        if pending is not None:
            pending.append((index, t0))
            return
        self._outstanding[vid] = [(index, t0)]
        delay = self.network.path_latency(self.node, self.agent.node)

        def on_payload(payload: bytes, source: AccessSource,
                       comm: float) -> None:
            self.agent.lors.scheduler.submit(
                self.agent.node, self.node, len(payload),
                on_complete=lambda fl: complete(payload, source, comm),
                label=f"to-client:{vid}",
                priority=Priority.DEMAND,
            )

        def complete(payload: bytes, source: AccessSource,
                     comm: float) -> None:
            waiters = self._outstanding.pop(vid, [(index, t0)])
            self._keep(vid, payload)
            now = self.queue.now
            for w_index, w_t0 in waiters:
                self.metrics.record(AccessRecord(
                    index=w_index, viewset_id=vid, source=source,
                    request_time=w_t0, comm_latency=comm,
                    decompress_seconds=0.0, total_latency=now - w_t0,
                ))

        self.queue.schedule_in(
            delay, lambda: self.agent.request(vid, on_payload),
            f"client-req:{vid}",
        )

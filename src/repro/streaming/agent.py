"""The client agent: cache, broker and prefetcher (Section 3.5).

The client agent "brokers the communication from client to all other
modules".  Its request path mirrors the paper exactly:

1. **cache hit** — the view set is in the agent's payload cache: served at
   memory speed (~1e-4 s data-access latency);
2. **staged** — the exNode (cached or fetched from the DVS) has replicas on
   the LAN depot placed by aggressive staging: LoRS downloads from the LAN,
   bypassing "the relatively slower wide area network";
3. **WAN** — otherwise the exNode's wide-area replicas serve the blocks
   (multi-stream, replica-ranked by proximity);
4. **server runtime** — the DVS knows no exNode: the request is forwarded to
   the server agent for generation.

All in-flight fetches live in the scheduler's shared
:class:`~repro.lon.scheduler.InFlightRegistry`: duplicate requests coalesce
onto one download, a demand arrival *promotes* an in-flight prefetch or
staging copy to DEMAND class instead of starting a duplicate, and cursor
moves cancel speculative fetches that are no longer nearby.  Demand misses
run at DEMAND priority; prefetches at PREFETCH — they warm the cache without
crowding out a waiting user.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..lightfield.lattice import CameraLattice, ViewSetKey, parse_viewset_id
from ..lon.exnode import ExNode, Mapping
from ..lon.lors import Deferred, DownloadJob, LoRS
from ..lon.network import Network
from ..lon.scheduler import InFlightRegistry, Priority
from ..lon.simtime import EventQueue
from ..obs.tracer import NOOP_SPAN, NULL_TRACER, Tracer
from .dvs import DVSServer
from .metrics import AccessSource
from .server import ServerAgent

__all__ = ["ClientAgent", "AgentStats"]

#: data-access latency of an agent cache hit (memory copy), Figure 12's floor
HIT_LATENCY = 1e-4


@dataclass
class AgentStats:
    """Counters for hit-rate and prefetch-efficiency analysis."""

    requests: int = 0
    hits: int = 0
    lan_depot_fetches: int = 0
    wan_fetches: int = 0
    server_generations: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0           # demand requests served by prefetched data
    coalesced: int = 0
    evictions: int = 0
    deduped: int = 0                 # duplicate cross-layer fetches suppressed
    promoted: int = 0                # background fetches promoted to DEMAND
    cancelled: int = 0               # stale prefetches cancelled on retarget


@dataclass
class _Waiter:
    on_payload: Callable[[bytes, AccessSource, float], None]
    t_arrival: float
    prefetch: bool


@dataclass
class _Flight:
    """Agent-side bookkeeping for one registry entry it waits on."""

    waiters: List[_Waiter] = field(default_factory=list)
    prefetch_only: bool = True
    priority: Priority = Priority.PREFETCH
    job: Optional[DownloadJob] = None
    foreign: bool = False      # bytes are moving under another layer's entry
    retried: bool = False
    cancelled: bool = False
    span: object = NOOP_SPAN   # this fetch's trace span
    #: sim time the first data flow was admitted (the queue-wait boundary);
    #: None when the payload never rode a flow (shouldn't happen on misses)
    t_first_flow: Optional[float] = None


class ClientAgent:
    """Broker + cache between clients and the storage network.

    Parameters
    ----------
    cache_bytes:
        Payload-cache budget (LRU).  ``None`` = unbounded.
    max_streams:
        Parallel block streams per download (LoRS multi-threading).
    """

    def __init__(
        self,
        node: str,
        queue: EventQueue,
        network: Network,
        lors: LoRS,
        dvs: DVSServer,
        dvs_node: str,
        lattice: CameraLattice,
        server_agents: Optional[Dict[str, ServerAgent]] = None,
        cache_bytes: Optional[int] = None,
        max_streams: int = 8,
        prefetch_cancel_beyond: Optional[int] = 2,
        tracer: Optional[Tracer] = None,
    ) -> None:
        """``prefetch_cancel_beyond``: on a cursor retarget, in-flight
        prefetches farther than this view-set grid distance from the new
        cursor are cancelled (``None`` disables cancellation)."""
        self.node = node
        self.queue = queue
        self.network = network
        self.lors = lors
        self.scheduler = lors.scheduler
        self.registry: InFlightRegistry = lors.scheduler.registry
        self.dvs = dvs
        self.dvs_node = dvs_node
        self.lattice = lattice
        self.server_agents = dict(server_agents or {})
        self.cache_bytes = cache_bytes
        self.max_streams = max_streams
        self.prefetch_cancel_beyond = prefetch_cancel_beyond
        self._payloads: OrderedDict[str, bytes] = OrderedDict()
        self._payload_total = 0
        self._exnodes: Dict[str, ExNode] = {}
        self._staged_lan: Dict[str, ExNode] = {}
        self._flights: Dict[str, _Flight] = {}
        self._prefetched: Set[str] = set()
        self.stats = AgentStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # per-viewset timing marks left behind by _deliver for the client's
        # stage-span reconstruction (populated only when tracing is on)
        self._marks: Dict[str, Dict[str, Optional[float]]] = {}

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------
    def cached(self, vid: str) -> bool:
        """True if the payload is in the agent cache."""
        return vid in self._payloads

    def _cache_put(self, vid: str, payload: bytes) -> None:
        if vid in self._payloads:
            self._payload_total -= len(self._payloads.pop(vid))
        self._payloads[vid] = payload
        self._payload_total += len(payload)
        if self.cache_bytes is None:
            return
        while self._payload_total > self.cache_bytes and len(self._payloads) > 1:
            old_vid, old = self._payloads.popitem(last=False)
            self._payload_total -= len(old)
            self._prefetched.discard(old_vid)
            self.stats.evictions += 1

    def _cache_get(self, vid: str) -> Optional[bytes]:
        payload = self._payloads.get(vid)
        if payload is not None:
            self._payloads.move_to_end(vid)
        return payload

    # ------------------------------------------------------------------
    # exNode overlay maintained by staging
    # ------------------------------------------------------------------
    def note_exnode(self, vid: str, exnode: ExNode) -> None:
        """Cache an exNode (from a DVS answer or staging)."""
        self._exnodes[vid] = exnode

    def exnode_for(self, vid: str) -> Optional[ExNode]:
        """The cached exNode, if any."""
        return self._exnodes.get(vid)

    def note_staged(self, vid: str, lan_exnode: ExNode,
                    mappings: List[Mapping]) -> None:
        """Record a complete LAN-depot replica produced by staging.

        ``lan_exnode`` must cover the payload entirely from LAN depots; the
        mappings are also merged into the agent's exNode overlay so ordinary
        downloads rank the LAN replicas first.
        """
        self._staged_lan[vid] = lan_exnode
        base = self._exnodes.get(vid)
        if base is not None:
            for m in mappings:
                base.add_mapping(m)

    def is_staged(self, vid: str) -> bool:
        """True if a complete LAN replica exists."""
        return vid in self._staged_lan

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def request(
        self,
        vid: str,
        on_payload: Callable[[bytes, AccessSource, float], None],
        prefetch: bool = False,
        span: object = None,
    ) -> None:
        """Ask for a view set (invoked at the request's arrival time).

        ``on_payload(payload, source, comm_latency)`` fires at the sim time
        the payload is available *at the agent*; ``comm_latency`` is the
        Figure 12 data-access latency.  ``span``, when given, parents the
        fetch's trace spans (normally the client's access root span).
        """
        self.stats.requests += 1
        if prefetch:
            self.stats.prefetches_issued += 1
        t0 = self.queue.now
        payload = self._cache_get(vid)
        if payload is not None:
            if not prefetch:
                self.stats.hits += 1
                if vid in self._prefetched:
                    self.stats.prefetch_hits += 1
            self.queue.schedule_in(
                HIT_LATENCY,
                lambda: on_payload(payload, AccessSource.AGENT_CACHE,
                                   HIT_LATENCY),
                f"agent-hit:{vid}",
            )
            return
        waiter = _Waiter(on_payload=on_payload, t_arrival=t0,
                         prefetch=prefetch)
        flight = self._flights.get(vid)
        if flight is not None:
            # coalesce onto the flight we already wait on; a demand arrival
            # promotes whatever transfer is moving the bytes
            self.stats.coalesced += 1
            flight.waiters.append(waiter)
            flight.prefetch_only &= prefetch
            flight.span.event("coalesced", prefetch=prefetch)
            if not prefetch:
                if self.registry.promote(vid, Priority.DEMAND):
                    self.stats.promoted += 1
            return
        if vid in self.registry:
            # another layer (staging) is already moving these bytes: ride
            # its completion instead of starting a duplicate download
            self.stats.deduped += 1
            self.registry.note_deduped(vid)
            flight = _Flight(
                waiters=[waiter], prefetch_only=prefetch, foreign=True,
                priority=Priority.PREFETCH if prefetch else Priority.DEMAND,
            )
            flight.span = self._begin_fetch_span(vid, prefetch, span)
            flight.span.event("riding-foreign-transfer")
            self._flights[vid] = flight
            if not prefetch:
                if self.registry.promote(vid, Priority.DEMAND):
                    self.stats.promoted += 1
            self.registry.subscribe(
                vid, lambda ok: self._foreign_done(vid, ok)
            )
            return
        flight = _Flight(
            waiters=[waiter], prefetch_only=prefetch,
            priority=Priority.PREFETCH if prefetch else Priority.DEMAND,
        )
        flight.span = self._begin_fetch_span(vid, prefetch, span)
        self._flights[vid] = flight
        self._register_flight(vid, flight)
        self._resolve(vid)

    def _begin_fetch_span(self, vid: str, prefetch: bool,
                          parent: object) -> object:
        """Open the span tracking one agent fetch.

        Demand fetches hang under the client's access span; prefetches have
        no demand parent and become roots in the "prefetch" track.
        """
        return self.tracer.begin(
            f"fetch:{vid}",
            parent=parent,
            category="prefetch" if (prefetch and parent is None) else "fetch",
            viewset=vid,
        )

    def _register_flight(self, vid: str, flight: _Flight) -> None:
        self.registry.register(
            vid,
            "prefetch" if flight.prefetch_only else "demand",
            flight.priority,
            promote_cb=lambda p: self._promote_flight(vid, p),
            cancel_cb=lambda: self._cancel_flight(vid),
            span=flight.span,
        )

    def _promote_flight(self, vid: str, priority: Priority) -> None:
        flight = self._flights.get(vid)
        if flight is None:
            return
        flight.priority = Priority(priority)
        if flight.job is not None:
            flight.job.promote(priority)

    def _cancel_flight(self, vid: str) -> None:
        flight = self._flights.pop(vid, None)
        if flight is None:
            return
        flight.cancelled = True
        self.stats.cancelled += 1
        flight.span.finish(state="cancelled")
        if flight.job is not None:
            flight.job.cancel()

    def _foreign_done(self, vid: str, ok: bool) -> None:
        """The other layer's transfer finished (or died): resolve normally.

        On success the view set is now staged on the LAN depot, so this
        turns into a fast local fetch; on failure we fall back to the usual
        exNode/DVS path.
        """
        flight = self._flights.get(vid)
        if flight is None or flight.cancelled:
            return
        if vid in self.registry:
            # several agents rode the same transfer and another rider
            # re-claimed the key first (multi-client sessions); keep riding
            # — its local fetch is LAN-fast now that the bytes are staged
            flight.span.event("riding-foreign-transfer")
            if not flight.prefetch_only:
                if self.registry.promote(vid, Priority.DEMAND):
                    self.stats.promoted += 1
            self.registry.subscribe(
                vid, lambda ok2: self._foreign_done(vid, ok2)
            )
            return
        flight.foreign = False
        self._register_flight(vid, flight)
        self._resolve(vid)

    def retarget(self, key: ViewSetKey) -> None:
        """Cursor moved: cancel speculative fetches now far from it."""
        if self.prefetch_cancel_beyond is None:
            return
        for vid, flight in list(self._flights.items()):
            if not flight.prefetch_only or flight.foreign:
                continue
            try:
                k = parse_viewset_id(vid)
            except ValueError:
                continue  # zoom/temporal namespaces have no grid distance
            if (self.lattice.viewset_distance(key, k)
                    > self.prefetch_cancel_beyond):
                self.registry.cancel(vid)

    # -- resolution pipeline ---------------------------------------------
    def _resolve(self, vid: str) -> None:
        staged = self._staged_lan.get(vid)
        if staged is not None:
            self._download_classified(vid, staged)
            return
        exnode = self._exnodes.get(vid)
        if exnode is not None:
            self._download_classified(vid, exnode)
            return
        # DVS query: RPC to the DVS node + hierarchical lookup delay
        delay = self.network.rpc_delay(self.node, self.dvs_node)
        flight = self._flights.get(vid)
        fspan = flight.span if flight is not None else NOOP_SPAN
        dvs_span = fspan.child("dvs-query", viewset=vid)

        def do_query() -> None:
            result = self.dvs.query(vid)

            def after_lookup() -> None:
                dvs_span.finish(
                    found="exnode" if result.exnodes
                    else ("server" if result.server_agent else "nothing"),
                )
                if result.exnodes:
                    ex = result.exnodes[0].read_only_view()
                    self._exnodes[vid] = ex
                    self._download_classified(vid, ex)
                elif result.server_agent is not None:
                    self._generate(vid, result.server_agent)
                else:
                    self._fail(vid, RuntimeError(
                        f"DVS has no exNode or server agent for {vid}"
                    ))

            self.queue.schedule_in(result.lookup_delay, after_lookup,
                                   f"dvs-lookup:{vid}")

        self.queue.schedule_in(delay, do_query, f"dvs-rpc:{vid}")

    def _download_classified(self, vid: str, exnode: ExNode) -> None:
        """Download via LoRS; classify the source by which depots served."""
        flight = self._flights.get(vid)
        if flight is None or flight.cancelled:
            return
        deferred = self.lors.download(exnode, self.node,
                                      max_streams=self.max_streams,
                                      priority=flight.priority,
                                      span=flight.span)
        flight.job = deferred.job  # type: ignore[attr-defined]

        def done(dfd: Deferred) -> None:
            if self._flights.get(vid) is not flight or flight.cancelled:
                return  # cancelled or superseded: nobody is waiting
            flight.job = None
            if dfd.failed:
                # drop the stale exNode and retry through the DVS once
                self._exnodes.pop(vid, None)
                self._staged_lan.pop(vid, None)
                if not flight.retried:
                    flight.retried = True
                    self._resolve(vid)
                else:
                    self._fail(vid, RuntimeError(f"download failed for {vid}"))
                return
            job = dfd.job  # type: ignore[attr-defined]
            if flight.t_first_flow is None:
                flight.t_first_flow = job.t_first_flow
            lan_names = set(self._lan_depot_names())
            depots_used = set(job.per_depot_bytes)
            if depots_used and depots_used <= lan_names:
                source = AccessSource.LAN_DEPOT
                self.stats.lan_depot_fetches += 1
            else:
                source = AccessSource.WAN_DEPOT
                self.stats.wan_fetches += 1
            self._deliver(vid, bytes(dfd.result()), source)

        deferred.add_callback(done)

    def _lan_depot_names(self) -> List[str]:
        """Depots reachable at LAN latency (< 5 ms) from this agent."""
        out = []
        for depot in self.lors.lbone.all_depots():
            if self.lors.lbone.latency_from(self.node, depot.name) < 0.005:
                out.append(depot.name)
        return out

    def _generate(self, vid: str, agent_node: str) -> None:
        server = self.server_agents.get(agent_node)
        if server is None:
            self._fail(vid, RuntimeError(
                f"unknown server agent {agent_node!r} for {vid}"
            ))
            return
        self.stats.server_generations += 1
        flight = self._flights.get(vid)
        fspan = flight.span if flight is not None else NOOP_SPAN

        def note_first_flow(t: float) -> None:
            if flight is not None and flight.t_first_flow is None:
                flight.t_first_flow = t

        delay = self.network.path_latency(self.node, agent_node)
        self.queue.schedule_in(
            delay,
            lambda: server.request_viewset(
                vid,
                self.node,
                lambda payload: self._deliver(
                    vid, payload, AccessSource.SERVER_RUNTIME
                ),
                span=fspan,
                on_first_flow=note_first_flow,
            ),
            f"gen-req:{vid}",
        )

    def _deliver(self, vid: str, payload: bytes,
                 source: AccessSource) -> None:
        flight = self._flights.pop(vid, None)
        self._cache_put(vid, payload)
        self.registry.complete(vid, success=True)
        if flight is None:
            return
        if self.tracer.enabled and any(not w.prefetch for w in flight.waiters):
            # only demand deliveries leave a mark: the client's on_payload is
            # the one consumer, so prefetch-only deliveries would leak stale
            # boundary times into a later cache hit's stage spans
            self._marks[vid] = {"t_first_flow": flight.t_first_flow}
        flight.span.finish(source=source.value, bytes=len(payload),
                           waiters=len(flight.waiters))
        if flight.prefetch_only:
            self._prefetched.add(vid)
        now = self.queue.now
        for w in flight.waiters:
            if w.prefetch:
                self._prefetched.add(vid)
            w.on_payload(payload, source, now - w.t_arrival)

    def _fail(self, vid: str, exc: Exception) -> None:
        flight = self._flights.pop(vid, None)
        self.registry.complete(vid, success=False)
        if flight is None:
            return
        flight.span.finish(state="failed")
        for w in flight.waiters:
            if not w.prefetch:
                raise exc  # demand path has no fallback: surface loudly

    def take_flight_mark(self, vid: str) -> Optional[Dict[str, Optional[float]]]:
        """Pop the timing marks _deliver left for ``vid`` (tracing only).

        The client uses these to place the queue-wait / network-transfer
        boundary in its per-access stage spans; None on cache hits (no
        flight ever existed) or when tracing is disabled.
        """
        return self._marks.pop(vid, None)

    # ------------------------------------------------------------------
    def prefetch(self, keys: List[ViewSetKey]) -> None:
        """Warm the cache for likely-next view sets (Figure 4 policy)."""
        for key in keys:
            vid = self.lattice.viewset_id(key)
            if vid in self._payloads or vid in self._flights:
                continue
            if vid in self.registry:
                # staging (or another layer) is already moving these bytes
                self.stats.deduped += 1
                self.registry.note_deduped(vid)
                continue
            self.request(vid, lambda *a: None, prefetch=True)

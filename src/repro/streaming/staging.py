"""Aggressive two-stage prefetching via a LAN depot (Figure 5, Section 4.3).

"While the network is vacant, aggressive staging of view sets that may be
soon requested are performed ... All such LoN operations take place as third
party communication without consuming resources on either the client or the
client agent."

The pump keeps a queue over the *entire database*, ordered by view-set grid
distance from the cursor's current view set ("ordered by distance from the
current position of the cursor, and this order is updated dynamically as the
cursor moves").  Up to ``max_concurrent`` third-party copies run at once;
each copy moves a view set's blocks from the WAN depots onto the LAN depot
as *soft* IBP allocations, then registers the LAN replica with the client
agent so subsequent misses are served locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..lightfield.lattice import CameraLattice, ViewSetKey
from ..lon.exnode import ExNode, Mapping
from ..lon.ibp import Depot
from ..lon.lors import CopyJob, Deferred, LoRS
from ..lon.scheduler import Priority
from ..lon.simtime import EventQueue, Process
from ..obs.tracer import NULL_TRACER, Tracer
from .agent import ClientAgent
from .dvs import DVSServer

__all__ = ["StagingPump", "StagingStats"]


@dataclass
class StagingStats:
    """Progress counters for staging analysis."""

    staged: int = 0
    failed: int = 0
    bytes_staged: int = 0
    reorders: int = 0
    deduped: int = 0     # copies suppressed: bytes already in flight elsewhere
    promoted: int = 0    # copies promoted to DEMAND by an early user arrival
    cancelled: int = 0   # copies cancelled by a cursor retarget (requeued)


class StagingPump:
    """Background third-party copier onto the LAN depot.

    Parameters
    ----------
    order:
        ``"proximity"`` (the paper's dynamic cursor-distance order) or
        ``"fifo"`` (ablation: row-major database order).
    max_concurrent:
        Simultaneous third-party copies ("exploiting every bit of available
        network bandwidth" — more streams, more aggression).
    """

    def __init__(
        self,
        queue: EventQueue,
        lors: LoRS,
        dvs: DVSServer,
        agent: ClientAgent,
        lan_depot: Depot,
        lattice: CameraLattice,
        max_concurrent: int = 2,
        streams_per_copy: int = 2,
        tick_period: float = 0.05,
        order: str = "proximity",
        lease_duration: float = 3600.0,
        cancel_beyond: Optional[int] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        """``cancel_beyond``: on a cursor move, in-flight copies farther
        than this view-set grid distance from the new cursor are cancelled
        and requeued (``None`` — the default — disables cancellation;
        promoted copies someone is waiting on are never cancelled)."""
        if order not in ("proximity", "fifo"):
            raise ValueError("order must be 'proximity' or 'fifo'")
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.queue = queue
        self.lors = lors
        self.registry = lors.scheduler.registry
        self.dvs = dvs
        self.agent = agent
        self.lan_depot = lan_depot
        self.lattice = lattice
        self.max_concurrent = max_concurrent
        self.streams_per_copy = max(1, streams_per_copy)
        self.order = order
        self.lease_duration = lease_duration
        self.cancel_beyond = cancel_beyond
        self._pending: List[ViewSetKey] = list(lattice.all_viewsets())
        self._in_flight: Set[str] = set()
        self._done: Set[str] = set()
        self._cursor_key: Optional[ViewSetKey] = None
        self._inflight_keys: Dict[str, ViewSetKey] = {}
        self._jobs: Dict[str, CopyJob] = {}
        self._priority: Dict[str, Priority] = {}
        self._cancelled: Set[str] = set()
        self.stats = StagingStats()
        self._process = Process(queue, self._tick, "staging-pump")
        self._sorted = False
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._spans: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin staging "as soon as visualization of a dataset begins"."""
        self._process.start(0.0)

    def stop(self) -> None:
        """Halt the pump (in-flight copies complete)."""
        self._process.stop()

    @property
    def complete(self) -> bool:
        """True once the whole database is localized."""
        return not self._pending and not self._in_flight

    def update_cursor(self, key: ViewSetKey) -> None:
        """Dynamic retarget: re-sort the queue and drop far in-flight work.

        The queue re-sorts around the new cursor; with ``cancel_beyond``
        set, in-flight copies now farther than that distance are cancelled
        (and requeued) so their bandwidth goes to nearer view sets.  Copies
        promoted to DEMAND are exempt — a user is waiting on them.
        """
        if key == self._cursor_key:
            return
        self._cursor_key = key
        if self.order == "proximity":
            self._sorted = False
            self.stats.reorders += 1
        if self.cancel_beyond is None:
            return
        for vid, k in list(self._inflight_keys.items()):
            entry = self.registry.get(vid)
            if entry is None or entry.priority < Priority.STAGING:
                continue
            if self.lattice.viewset_distance(key, k) > self.cancel_beyond:
                self.registry.cancel(vid)

    # ------------------------------------------------------------------
    def _tick(self) -> Optional[float]:
        self._launch_copies()
        if self.complete:
            return None  # everything localized; the pump retires
        return 0.05

    def _launch_copies(self) -> None:
        while self._pending and len(self._in_flight) < self.max_concurrent:
            if self.order == "proximity" and not self._sorted:
                anchor = self._cursor_key or self._pending[0]
                self._pending.sort(
                    key=lambda k: self.lattice.viewset_distance(anchor, k),
                    reverse=True,  # pop() takes from the end: nearest last
                )
                self._sorted = True
            key = self._pending.pop()
            vid = self.lattice.viewset_id(key)
            if vid in self._done or self.agent.is_staged(vid):
                continue
            if vid in self.registry:
                # another layer (agent demand/prefetch) is already moving
                # these bytes: suppress the duplicate copy, requeue the key
                # and wait for the next tick
                self.stats.deduped += 1
                self.registry.note_deduped(vid)
                self._pending.insert(0, key)
                break
            self._in_flight.add(vid)
            self._inflight_keys[vid] = key
            span = self.tracer.begin(f"stage:{vid}", category="staging",
                                     viewset=vid)
            self._spans[vid] = span
            self.registry.register(
                vid, "staging", Priority.STAGING,
                promote_cb=lambda p, v=vid: self._promote(v, p),
                cancel_cb=lambda v=vid, k=key: self._cancel(v, k),
                span=span,
            )
            self._stage_one(key, vid)

    def _promote(self, vid: str, priority: Priority) -> None:
        """A user arrived early: raise this copy's class mid-flight."""
        self._priority[vid] = Priority(priority)
        self.stats.promoted += 1
        job = self._jobs.get(vid)
        if job is not None:
            job.promote(priority)

    def _cancel(self, vid: str, key: ViewSetKey) -> None:
        """Registry cancel hook: tear down the copy, requeue the key."""
        self._cancelled.add(vid)
        job = self._jobs.get(vid)
        if job is not None:
            job.cancel()  # rejects the deferred; done() sees _cancelled
        # pre-copy phases (DVS query in flight) unwind in _copy/_release

    def _release(self, vid: str, key: ViewSetKey, requeue: bool) -> None:
        self._in_flight.discard(vid)
        self._inflight_keys.pop(vid, None)
        self._jobs.pop(vid, None)
        self._priority.pop(vid, None)
        span = self._spans.pop(vid, None)
        if span is not None:
            span.finish(state="requeued" if requeue else "staged")
        if requeue:
            self._pending.insert(0, key)

    def _stage_one(self, key: ViewSetKey, vid: str) -> None:
        exnode = self.agent.exnode_for(vid)
        if exnode is not None:
            self._copy(key, vid, exnode)
            return
        # third-party staging still needs the exNode: ask the DVS
        delay = self.agent.network.rpc_delay(self.agent.node,
                                             self.agent.dvs_node)

        def do_query() -> None:
            result = self.dvs.query(vid)
            if not result.exnodes:
                # not yet generated: skip — demand path will trigger the
                # server; retry staging later
                self._release(vid, key, requeue=True)
                self._cancelled.discard(vid)
                self.registry.complete(vid, success=False)
                return
            ex = result.exnodes[0].read_only_view()
            self.agent.note_exnode(vid, ex)
            self.queue.schedule_in(
                result.lookup_delay, lambda: self._copy(key, vid, ex),
                f"stage-lookup:{vid}",
            )

        self.queue.schedule_in(delay, do_query, f"stage-dvs:{vid}")

    def _copy(self, key: ViewSetKey, vid: str, exnode: ExNode) -> None:
        if vid in self._cancelled:
            # cancelled while still looking up the exNode: nothing started
            self._cancelled.discard(vid)
            self.stats.cancelled += 1
            self._release(vid, key, requeue=True)
            self.registry.complete(vid, success=False)
            return
        deferred = self.lors.augment(
            exnode, self.lan_depot, duration=self.lease_duration, soft=True,
            max_streams=self.streams_per_copy,
            priority=self._priority.get(vid, Priority.STAGING),
            span=self._spans.get(vid),
        )
        self._jobs[vid] = deferred.job  # type: ignore[attr-defined]

        def done(dfd: Deferred) -> None:
            if vid in self._cancelled:
                # a cursor retarget killed this copy: requeue quietly (the
                # registry entry is completed by the cancel path)
                self._cancelled.discard(vid)
                self.stats.cancelled += 1
                self._release(vid, key, requeue=True)
                return
            if dfd.failed:
                self.stats.failed += 1
                # requeue at the back; depot pressure may clear
                self._release(vid, key, requeue=True)
                self.registry.complete(vid, success=False)
                return
            mappings: List[Mapping] = dfd.result()
            lan_only = ExNode(
                name=vid, length=exnode.length, mappings=mappings,
                metadata=dict(exnode.metadata),
            )
            if not lan_only.is_fully_covered():
                self.stats.failed += 1
                self._release(vid, key, requeue=True)
                self.registry.complete(vid, success=False)
                return
            self._done.add(vid)
            self.stats.staged += 1
            self.stats.bytes_staged += exnode.length
            self._release(vid, key, requeue=False)
            self.agent.note_staged(vid, lan_only, mappings)
            self.registry.complete(vid, success=True)
            self._launch_copies()

        deferred.add_callback(done)

"""Latency accounting for streaming sessions.

The paper reports two latency channels per view-set access:

* **client latency** (Figures 9-11): everything the user waits for — request
  brokerage, communication, decompression;
* **communication latency** (Figure 12): the data-access component alone,
  measured at the client agent, which spans four decades between a cache hit
  (~1e-4 s) and a WAN fetch (~1 s).

Each access also records *where* the bytes came from, which yields the hit
rates and WAN-access rates quoted in Section 4.3 and the "initial phase"
boundary (the access index after which no WAN fetches occur).
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from ..lon.scheduler import TransferEvent

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry
    from ..obs.tracer import Tracer

__all__ = ["AccessSource", "AccessRecord", "SessionMetrics"]


class AccessSource(str, Enum):
    """Where a requested view set was ultimately served from."""

    CLIENT_RESIDENT = "client"      # already on the client console
    AGENT_CACHE = "hit"             # client agent cache hit
    LAN_DEPOT = "lan-depot"         # prestaged replica on the LAN depot
    WAN_DEPOT = "wan"               # fetched across the wide area
    SERVER_RUNTIME = "server"       # rendered on demand by the server


@dataclass
class AccessRecord:
    """One view-set access as observed at the client."""

    index: int                      # 1-based Nth access (the figures' x-axis)
    viewset_id: str
    source: AccessSource
    request_time: float             # sim time the client asked
    comm_latency: float             # data-access time at the client agent
    decompress_seconds: float       # client-side zlib inflate (wall clock)
    total_latency: float            # client-observed wait

    def __post_init__(self) -> None:
        if self.total_latency < 0 or self.comm_latency < 0:
            raise ValueError("latencies cannot be negative")


@dataclass
class SessionMetrics:
    """Accumulated records + derived statistics for one session run."""

    case_name: str = ""
    resolution: int = 0
    accesses: List[AccessRecord] = field(default_factory=list)
    prefetch_issued: int = 0
    prefetch_used: int = 0
    staged_count: int = 0
    staged_bytes: int = 0
    scheduling_policy: str = ""
    transfer_events: List[TransferEvent] = field(default_factory=list)
    deduped: int = 0                # cross-layer duplicate fetches suppressed
    promoted_transfers: int = 0     # background transfers promoted to DEMAND
    cancelled_transfers: int = 0    # transfers cancelled as no longer useful
    #: the session's tracer / metrics registry, wired by build_rig when
    #: observability is on (None otherwise); breakdown() reads the tracer
    tracer: Optional[Tracer] = None
    obs: Optional[MetricsRegistry] = None
    _seen_indices: Set[int] = field(default_factory=set, repr=False)

    def record_transfer_event(self, ev: TransferEvent) -> None:
        """Scheduler hook: append one transfer lifecycle event."""
        self.transfer_events.append(ev)

    def transfer_event_counts(self) -> Dict[str, int]:
        """Lifecycle event totals (queued/admitted/rerated/...)."""
        counts: Dict[str, int] = {}
        for ev in self.transfer_events:
            counts[ev.event] = counts.get(ev.event, 0) + 1
        return counts

    def transfer_events_for(self, label_prefix: str) -> List[TransferEvent]:
        """Lifecycle events whose label starts with ``label_prefix``.

        Labels follow the LoRS conventions: ``dl:`` (downloads), ``copy:``
        (staging), ``ul:`` (uploads), ``gen:`` (runtime generation),
        ``to-client:`` (agent→console shipment) — so experiments can
        attribute interference per transfer path.
        """
        return [e for e in self.transfer_events
                if e.label.startswith(label_prefix)]

    def record(self, rec: AccessRecord) -> None:
        """Add an access record.

        Records may *complete* out of order (a slow WAN fetch can outlive
        the next boundary crossing); the list is kept sorted by access
        index so the figures' x-axes are monotone.  Duplicate detection and
        the sorted insert are both O(log n) per record (a seen-index set +
        ``bisect.insort``), so recording a long session stays linear.
        """
        if rec.index in self._seen_indices:
            raise ValueError(f"duplicate access index {rec.index}")
        self._seen_indices.add(rec.index)
        insort(self.accesses, rec, key=lambda a: a.index)
        if self.obs is not None:
            # mergeable latency distributions: the registry's namespace
            # (one per shard worker) keeps fleet-wide merges collision-free
            self.obs.histogram("fleet.access_latency").observe(
                rec.total_latency)
            if rec.source not in (AccessSource.AGENT_CACHE,
                                  AccessSource.CLIENT_RESIDENT):
                self.obs.histogram("fleet.demand_miss_latency").observe(
                    rec.total_latency)

    def _pool(self, upto: Optional[int]) -> List[AccessRecord]:
        """Accesses with ``index <= upto`` (all of them when None).

        Slicing is by *access index*, not list position: with out-of-order
        or sparse indices the two differ, and the figures' "first N
        accesses" semantics want the index.
        """
        if upto is None:
            return self.accesses
        return self.accesses[:bisect_right(self.accesses, upto,
                                           key=lambda a: a.index)]

    # ------------------------------------------------------------------
    # the figures' series
    # ------------------------------------------------------------------
    def latency_series(self) -> List[float]:
        """Per-access client latency (Figures 9-11's y values)."""
        return [a.total_latency for a in self.accesses]

    def comm_latency_series(self) -> List[float]:
        """Per-access communication latency (Figure 12's y values)."""
        return [a.comm_latency for a in self.accesses]

    def decompress_series(self) -> List[float]:
        """Per-access decompression time (Figure 8's y values)."""
        return [a.decompress_seconds for a in self.accesses]

    # ------------------------------------------------------------------
    # Section 4.3 statistics
    # ------------------------------------------------------------------
    def source_counts(self) -> Dict[AccessSource, int]:
        """Number of accesses served from each tier."""
        counts: Dict[AccessSource, int] = {}
        for a in self.accesses:
            counts[a.source] = counts.get(a.source, 0) + 1
        return counts

    def rate(self, source: AccessSource,
             upto: Optional[int] = None) -> float:
        """Fraction of accesses with ``index <= upto`` served from a tier."""
        pool = self._pool(upto)
        if not pool:
            return 0.0
        return sum(1 for a in pool if a.source is source) / len(pool)

    def hit_rate(self, upto: Optional[int] = None) -> float:
        """Agent-cache hit rate (client-resident counts as a hit too)."""
        pool = self._pool(upto)
        if not pool:
            return 0.0
        hits = sum(
            1 for a in pool
            if a.source in (AccessSource.AGENT_CACHE,
                            AccessSource.CLIENT_RESIDENT)
        )
        return hits / len(pool)

    def wan_rate(self, upto: Optional[int] = None) -> float:
        """Fraction of accesses that went to the WAN (or server)."""
        pool = self._pool(upto)
        if not pool:
            return 0.0
        wan = sum(
            1 for a in pool
            if a.source in (AccessSource.WAN_DEPOT,
                            AccessSource.SERVER_RUNTIME)
        )
        return wan / len(pool)

    def initial_phase_length(self) -> int:
        """Index of the last WAN/server access (0 if none).

        The paper's "initial phase" ends when the system stops touching the
        wide area; afterwards latency is LAN-class.
        """
        last = 0
        for a in self.accesses:
            if a.source in (AccessSource.WAN_DEPOT,
                            AccessSource.SERVER_RUNTIME):
                last = a.index
        return last

    def mean_latency(self, skip: int = 0) -> float:
        """Average client latency over accesses after the first ``skip``."""
        pool = self.accesses[skip:]
        if not pool:
            return 0.0
        return sum(a.total_latency for a in pool) / len(pool)

    def breakdown(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Per-stage latency statistics from the session's trace.

        Requires the session to have run with tracing on (``build_rig``
        wires the tracer in); returns
        ``{source: {stage: {count, mean, p50, p95, total}}}`` — the
        trace-report table as data.  Empty when no tracer was attached.
        """
        if self.tracer is None:
            return {}
        from ..obs.report import stage_breakdown
        return stage_breakdown(self.tracer.span_dicts())

    def summary(self) -> Dict[str, object]:
        """One-line dict of everything a bench table row needs."""
        return {
            "case": self.case_name,
            "resolution": self.resolution,
            "accesses": len(self.accesses),
            "hit_rate": round(self.hit_rate(), 3),
            "wan_rate": round(self.wan_rate(), 3),
            "initial_phase": self.initial_phase_length(),
            "mean_latency_s": round(self.mean_latency(), 4),
            "steady_latency_s": round(
                self.mean_latency(skip=self.initial_phase_length()), 4
            ),
            "staged": self.staged_count,
            "scheduling": self.scheduling_policy,
            "deduped": self.deduped,
            "promoted": self.promoted_transfers,
            "cancelled": self.cancelled_transfers,
        }

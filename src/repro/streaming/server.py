"""Server and server agent: database generation and distribution.

Two roles from Section 3.4:

* **offline pre-distribution** — the generator renders the whole light field
  database, uploads view sets to the server depots (striped, optionally
  replicated) and registers every exNode with the DVS.  This happens before
  a session starts and costs no simulated time.
* **runtime generation** — when the DVS has no exNode for a view set (e.g. a
  zoomed-in close-up region), the request is forwarded to the server agent.
  The *scheduler chooses the latest request* (LIFO — the user has moved on,
  so the newest request is the relevant one), the generator renders it
  (simulated service time), a copy goes directly to the requesting client
  agent, the view set is uploaded to the depot pool, and the DVS is updated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..lightfield.lattice import ViewSetKey, parse_viewset_id
from ..lightfield.source import ViewSetSource
from ..lon.exnode import ExNode
from ..lon.ibp import Depot
from ..lon.lors import Deferred, LoRS
from ..lon.network import Network
from ..lon.scheduler import Priority
from ..lon.simtime import EventQueue
from ..obs.tracer import NOOP_SPAN, NULL_TRACER, Tracer
from .dvs import DVSServer

__all__ = ["GenerationRequest", "ServerAgent"]


@dataclass
class GenerationRequest:
    """A pending runtime render, with its reply route."""

    vid: str
    reply_node: str
    on_payload: Callable[[bytes], None]
    arrival: float
    span: object = NOOP_SPAN
    #: fires with the sim time the reply flow is submitted (tracing hook)
    on_first_flow: Optional[Callable[[float], None]] = None


class ServerAgent:
    """Front end for one or more generation servers.

    Parameters
    ----------
    node:
        Network node the agent (and its generator) lives at.
    source:
        Where view-set payloads come from (rendered database or synthetic).
    depots:
        Server depot pool for uploads.
    render_seconds_per_viewset:
        Simulated generation service time.  The paper generates the full
        database (288 view sets) in 2-4.5 h on 32 CPUs, i.e. ~25-56 s per
        view set; the default models the 200² end of that band.
    """

    def __init__(
        self,
        node: str,
        queue: EventQueue,
        network: Network,
        lors: LoRS,
        dvs: DVSServer,
        source: ViewSetSource,
        depots: Sequence[Depot],
        stripe_width: int = 3,
        replicas: int = 1,
        block_size: int = 1 << 20,
        render_seconds_per_viewset: float = 25.0,
        lease_duration: float = 24 * 3600.0,
        payload_for_vid: Optional[Callable[[str], bytes]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        """``payload_for_vid`` overrides how a view-set id resolves to
        bytes — used by zoom overlays and time-varying namespaces whose ids
        are not plain ``vs-i-j`` strings."""
        if render_seconds_per_viewset < 0:
            raise ValueError("render time cannot be negative")
        self.node = node
        self.queue = queue
        self.network = network
        self.lors = lors
        self.dvs = dvs
        self.source = source
        self.depots = list(depots)
        self.stripe_width = stripe_width
        self.replicas = replicas
        self.block_size = int(block_size)
        self.render_seconds = render_seconds_per_viewset
        self.lease_duration = lease_duration
        self._pending: List[GenerationRequest] = []
        self._busy = False
        self.generated = 0
        self.predistributed = 0
        self._payload_for_vid = payload_for_vid
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def payload_for(self, vid: str) -> bytes:
        """Resolve a view-set id to its payload bytes."""
        if self._payload_for_vid is not None:
            return self._payload_for_vid(vid)
        return self.source.payload(parse_viewset_id(vid))

    # ------------------------------------------------------------------
    # offline path
    # ------------------------------------------------------------------
    def pre_distribute(
        self, keys: Optional[Sequence[ViewSetKey]] = None
    ) -> Dict[str, ExNode]:
        """Upload view sets to the depot pool and register with the DVS.

        Offline: no simulated time elapses (the paper renders and uploads
        the database before the visualization session).  Returns the exNode
        per view-set id.
        """
        lattice = self.source.lattice
        todo = list(keys) if keys is not None else list(
            lattice.all_viewsets()
        )
        out: Dict[str, ExNode] = {}
        for key in todo:
            vid = lattice.viewset_id(key)
            payload = self.source.payload(key)
            exnode = self.lors.place(
                vid,
                payload,
                self.depots,
                stripe_width=self.stripe_width,
                replicas=self.replicas,
                block_size=self.block_size,
                duration=self.lease_duration,
                metadata={"resolution": str(self.source.resolution)},
            )
            self.dvs.register_exnode(vid, exnode)
            out[vid] = exnode
            self.predistributed += 1
        self.dvs.register_server_agent(self.node)
        return out

    # ------------------------------------------------------------------
    # runtime path
    # ------------------------------------------------------------------
    def request_viewset(
        self,
        vid: str,
        reply_node: str,
        on_payload: Callable[[bytes], None],
        span: object = None,
        on_first_flow: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Queue a runtime generation request (invoked at arrival time).

        ``span`` parents the render's trace spans; ``on_first_flow`` fires
        with the sim time the reply transfer is admitted (the requesting
        agent uses it as its queue-wait/transfer boundary).
        """
        self._pending.append(
            GenerationRequest(
                vid=vid,
                reply_node=reply_node,
                on_payload=on_payload,
                arrival=self.queue.now,
                span=span if span is not None else NOOP_SPAN,
                on_first_flow=on_first_flow,
            )
        )
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._pending:
            self._busy = False
            return
        self._busy = True
        # the scheduler chooses the LATEST request (Section 3.4)
        req = self._pending.pop()
        t_started = self.queue.now
        self.queue.schedule_in(
            self.render_seconds,
            lambda: self._finish_render(req, t_started),
            f"render:{req.vid}",
        )

    def _finish_render(self, req: GenerationRequest,
                       t_started: float) -> None:
        payload = self.payload_for(req.vid)
        self.generated += 1
        now = self.queue.now
        self.tracer.record("gen-queue-wait", req.arrival, t_started,
                           parent=req.span, viewset=req.vid)
        self.tracer.record("render", t_started, now,
                           parent=req.span, viewset=req.vid,
                           bytes=len(payload))
        if req.on_first_flow is not None:
            req.on_first_flow(now)
        # 1. direct copy to the requesting client agent (a user waits on it)
        self.lors.scheduler.submit(
            self.node,
            req.reply_node,
            len(payload),
            on_complete=lambda fl: req.on_payload(payload),
            label=f"gen:{req.vid}",
            priority=Priority.DEMAND,
            span=req.span,
        )
        # 2. upload to the server depot pool + DVS update; MAINTENANCE class
        # so database upkeep never crowds out the reply
        up = self.lors.upload(
            req.vid,
            payload,
            self.node,
            self.depots,
            stripe_width=self.stripe_width,
            replicas=self.replicas,
            block_size=self.block_size,
            duration=self.lease_duration,
            priority=Priority.MAINTENANCE,
        )

        def register(dfd: Deferred) -> None:
            if not dfd.failed:
                self.dvs.register_exnode(req.vid, dfd.result())

        up.add_callback(register)
        self._start_next()

    @property
    def queue_depth(self) -> int:
        """Requests waiting for the generator."""
        return len(self._pending)

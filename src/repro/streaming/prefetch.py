"""Prefetch policies (Figure 4 and ablation alternatives).

The paper's policy: when the cursor sits in a quadrant of the current view
set, only the three neighbors on that quadrant's side "may be needed", so
only those are prefetched.  Ablations compare against prefetching the whole
8-neighbor ring and no prefetching at all.
"""

from __future__ import annotations

from typing import List, Protocol

from ..lightfield.lattice import CameraLattice, ViewSetKey

__all__ = [
    "PrefetchPolicy",
    "QuadrantPolicy",
    "AllNeighborsPolicy",
    "NoPrefetchPolicy",
    "policy_by_name",
]


class PrefetchPolicy(Protocol):
    """Maps a cursor position to the view sets worth prefetching."""

    name: str

    def targets(
        self, lattice: CameraLattice, theta: float, phi: float
    ) -> List[ViewSetKey]:
        """View sets to prefetch for a cursor at (theta, phi)."""
        ...


class QuadrantPolicy:
    """The paper's policy: 3 neighbors on the cursor's quadrant side."""

    name = "quadrant"

    def targets(
        self, lattice: CameraLattice, theta: float, phi: float
    ) -> List[ViewSetKey]:
        return lattice.quadrant_neighbors(theta, phi)


class AllNeighborsPolicy:
    """Prefetch the full 8-neighbor ring (more extraneous transfers)."""

    name = "all-neighbors"

    def targets(
        self, lattice: CameraLattice, theta: float, phi: float
    ) -> List[ViewSetKey]:
        return lattice.neighbors(lattice.viewset_containing(theta, phi))


class NoPrefetchPolicy:
    """Fetch strictly on demand."""

    name = "none"

    def targets(
        self, lattice: CameraLattice, theta: float, phi: float
    ) -> List[ViewSetKey]:
        return []


def policy_by_name(name: str) -> PrefetchPolicy:
    """Instantiate a policy by its ablation name."""
    table = {
        "quadrant": QuadrantPolicy,
        "all-neighbors": AllNeighborsPolicy,
        "none": NoPrefetchPolicy,
    }
    try:
        return table[name]()
    except KeyError:
        raise ValueError(
            f"unknown prefetch policy {name!r}; choose from {sorted(table)}"
        ) from None

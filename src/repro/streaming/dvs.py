"""Dictionary of View Sets (DVS): the system's name service.

The DVS maps view-set identifiers to exNodes (one per replica) and, for view
sets that have never been rendered, to the server agent responsible for
generating them — "quite similar to the Domain Name Service" (Section 3.6).

It is implemented hierarchically: queries enter at the root level and recurse
toward leaves; each level that must be traversed adds a lookup delay, which
models the paper's "any query will go through all levels recursively until
the request is fulfilled".  The hierarchy is a radix partition of the
view-set id space, so lookups are deterministic.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..lon.exnode import ExNode

__all__ = ["DVSResult", "DVSServer"]


@dataclass
class DVSResult:
    """Outcome of a DVS query."""

    viewset_id: str
    exnodes: List[ExNode]
    server_agent: Optional[str]    # set when generation is required
    levels_visited: int
    lookup_delay: float            # seconds of simulated service time


class DVSServer:
    """Hierarchical exNode + server-agent tables.

    Parameters
    ----------
    node:
        Network node name the DVS runs at (callers pay the RPC to it).
    levels:
        Depth of the lookup hierarchy (>= 1).
    fanout:
        Children per level; a view-set id hashes to one leaf path.
    level_delay:
        Service time added per level traversed.
    """

    def __init__(
        self,
        node: str = "dvs",
        levels: int = 2,
        fanout: int = 8,
        level_delay: float = 0.0002,
    ) -> None:
        if levels < 1:
            raise ValueError("levels must be >= 1")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.node = node
        self.levels = levels
        self.fanout = fanout
        self.level_delay = level_delay
        # leaf tables: path tuple -> {vid: [exnodes]}
        self._exnode_tables: Dict[Tuple[int, ...], Dict[str, List[ExNode]]] = {}
        self._agent_table: Dict[str, str] = {}
        self._default_agent: Optional[str] = None
        self.queries = 0
        self.generation_referrals = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _leaf_path(self, vid: str) -> Tuple[int, ...]:
        # crc32, not hash(): stable across processes (PYTHONHASHSEED)
        h = zlib.crc32(vid.encode("ascii")) & 0x7FFFFFFF
        path = []
        for _ in range(self.levels - 1):
            path.append(h % self.fanout)
            h //= self.fanout
        return tuple(path)

    def register_exnode(self, vid: str, exnode: ExNode) -> None:
        """Add a replica exNode for a view set."""
        table = self._exnode_tables.setdefault(self._leaf_path(vid), {})
        table.setdefault(vid, []).append(exnode)

    def unregister(self, vid: str) -> int:
        """Remove every exNode for a view set; returns count removed."""
        table = self._exnode_tables.get(self._leaf_path(vid), {})
        gone = table.pop(vid, [])
        return len(gone)

    def register_server_agent(self, agent_node: str,
                              vids: Optional[List[str]] = None) -> None:
        """Route generation requests for ``vids`` (or all) to an agent."""
        if vids is None:
            self._default_agent = agent_node
        else:
            for vid in vids:
                self._agent_table[vid] = agent_node

    # ------------------------------------------------------------------
    # query
    # ------------------------------------------------------------------
    def query(self, vid: str) -> DVSResult:
        """Resolve a view-set id.

        Walks the hierarchy to the leaf that owns ``vid``.  If exNodes exist
        there, they are returned; otherwise the server-agent table supplies
        the generation target (the caller forwards the request).
        """
        self.queries += 1
        path = self._leaf_path(vid)
        levels_visited = 1 + len(path)
        table = self._exnode_tables.get(path, {})
        exnodes = list(table.get(vid, []))
        agent = None
        if not exnodes:
            agent = self._agent_table.get(vid, self._default_agent)
            self.generation_referrals += 1
        return DVSResult(
            viewset_id=vid,
            exnodes=exnodes,
            server_agent=agent,
            levels_visited=levels_visited,
            lookup_delay=levels_visited * self.level_delay,
        )

    def known_viewsets(self) -> List[str]:
        """All view-set ids with at least one registered exNode."""
        out: List[str] = []
        for table in self._exnode_tables.values():
            out.extend(table.keys())
        return sorted(out)

    def replica_count(self, vid: str) -> int:
        """Number of registered exNodes (replicas) for a view set."""
        table = self._exnode_tables.get(self._leaf_path(vid), {})
        return len(table.get(vid, []))

"""The client: user console, local residency and access accounting.

The client "takes user input and renders the desired view, if that view is
within the current view set that is locally stored.  Otherwise, it asks the
client agent to request new view sets."  Every view-set boundary crossing is
one *access* — the x-axis of Figures 8-12 — and the client measures what the
user experiences: request brokering + communication + decompression.

Decompression is performed **for real** on the received zlib payload and its
wall-clock time is injected into the simulation (scaled by ``cpu_scale`` to
model slower client hardware; 1.0 = this machine).  For bit-reproducible
runs, ``cpu_seconds_per_byte`` replaces the measured time with a modeled
per-byte CPU cost so host timing never reaches the event stream.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from ..lightfield.compression import codec_for_payload
from ..lightfield.lattice import CameraLattice, ViewSetKey
from ..lightfield.viewset import ViewSet
from ..lon.network import Network
from ..lon.scheduler import Priority
from ..lon.simtime import EventQueue
from ..obs.tracer import NULL_TRACER, SpanLike, Tracer
from .agent import ClientAgent
from .metrics import AccessRecord, AccessSource, SessionMetrics
from .prefetch import PrefetchPolicy, QuadrantPolicy
from .trace import CursorSample, CursorTrace

__all__ = ["Client"]

#: local bookkeeping cost of switching to an already-resident view set
RESIDENT_SWAP_LATENCY = 1e-4


class Client:
    """User console driven by a cursor trace.

    Parameters
    ----------
    resident_capacity:
        Number of decompressed view sets kept on the console.  1 models a
        PDA ("for those low-end devices ... without any local caching on
        the client at all" beyond the current view set); larger values model
        workstations.
    cpu_scale:
        Multiplier applied to measured decompression wall time before it is
        injected as simulated delay (models 2003-era client CPUs).
    cpu_seconds_per_byte:
        When set, decompression delay is *modeled* as
        ``len(payload) * cpu_seconds_per_byte * cpu_scale`` instead of
        measured — the payload is still decoded for real, but host timing
        never enters the simulation.  This is the knob the determinism
        checker relies on: with it, identical seeds give bit-identical
        event streams across machines and runs.
    """

    def __init__(
        self,
        node: str,
        queue: EventQueue,
        network: Network,
        agent: ClientAgent,
        lattice: CameraLattice,
        metrics: SessionMetrics,
        resident_capacity: int = 2,
        policy: Optional[PrefetchPolicy] = None,
        cpu_scale: float = 1.0,
        cpu_seconds_per_byte: Optional[float] = None,
        on_cursor: Optional[Callable[[ViewSetKey], None]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if resident_capacity < 1:
            raise ValueError("resident_capacity must be >= 1")
        if cpu_scale <= 0:
            raise ValueError("cpu_scale must be positive")
        if cpu_seconds_per_byte is not None and cpu_seconds_per_byte < 0:
            raise ValueError("cpu_seconds_per_byte must be non-negative")
        self.node = node
        self.queue = queue
        self.network = network
        self.agent = agent
        self.scheduler = agent.lors.scheduler
        self.lattice = lattice
        self.metrics = metrics
        self.resident_capacity = resident_capacity
        self.policy = policy if policy is not None else QuadrantPolicy()
        self.cpu_scale = cpu_scale
        self.cpu_seconds_per_byte = cpu_seconds_per_byte
        self.on_cursor = on_cursor
        self._resident: OrderedDict[ViewSetKey, ViewSet] = OrderedDict()
        self._current: Optional[ViewSetKey] = None
        self._last_quadrant: Optional[Tuple[ViewSetKey, Tuple[int, int]]] = None
        self._access_index = 0
        # vid -> [(access index, request time)] for accesses that landed
        # while the same view set was already being fetched
        self._outstanding: Dict[str, List[Tuple[int, float]]] = {}
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # access index -> open root span, joined back up in complete()
        self._access_spans: Dict[int, SpanLike] = {}

    # ------------------------------------------------------------------
    def resident_keys(self) -> List[ViewSetKey]:
        """View sets currently decompressed on the console."""
        return list(self._resident)

    def get_resident(self, key: ViewSetKey) -> Optional[ViewSet]:
        """ViewSetProvider protocol — lets a synthesizer render from here."""
        return self._resident.get(key)

    def _keep(self, key: ViewSetKey, vs: ViewSet) -> None:
        self._resident[key] = vs
        self._resident.move_to_end(key)
        while len(self._resident) > self.resident_capacity:
            self._resident.popitem(last=False)

    # ------------------------------------------------------------------
    # trace driving
    # ------------------------------------------------------------------
    def schedule_trace(self, trace: CursorTrace) -> None:
        """Arrange every cursor sample on the event queue."""
        for sample in trace:
            self.queue.schedule(
                sample.time, lambda s=sample: self.handle_cursor(s),
                "cursor",
            )

    def handle_cursor(self, sample: CursorSample) -> None:
        """Process one cursor position (called at its trace time)."""
        key = self.lattice.viewset_containing(sample.theta, sample.phi)
        if self.on_cursor is not None:
            self.on_cursor(key)
        if key != self._current:
            # retarget before the access: stale far-away prefetches yield
            # their bandwidth to the fetch the user is about to wait on
            self.agent.retarget(key)
            self._current = key
            self._access(key)
        # Figure 4 policy: when the cursor settles in a quadrant, prefetch
        # the neighbors on that side.  Fires on (view set, quadrant) change,
        # not on every sample — prefetch is movement-driven, "spontaneous".
        quadrant = self.lattice.quadrant(sample.theta, sample.phi)
        if (key, quadrant) == self._last_quadrant:
            return
        self._last_quadrant = (key, quadrant)
        targets = self.policy.targets(self.lattice, sample.theta, sample.phi)
        wanted = [
            k for k in targets
            if k not in self._resident
        ]
        if wanted:
            self.metrics.prefetch_issued += len(wanted)
            self.tracer.instant(
                "prefetch-decision",
                cursor=self.lattice.viewset_id(key),
                quadrant=str(quadrant),
                targets=len(wanted),
            )
            delay = self.network.path_latency(self.node, self.agent.node)
            self.queue.schedule_in(
                delay, lambda w=wanted: self.agent.prefetch(w),
                "client-prefetch",
            )

    # ------------------------------------------------------------------
    def _access(self, key: ViewSetKey) -> None:
        self._access_index += 1
        index = self._access_index
        vid = self.lattice.viewset_id(key)
        t0 = self.queue.now
        resident = self._resident.get(key)
        if resident is not None:
            self._resident.move_to_end(key)
            if self.tracer.enabled:
                root = self.tracer.record(
                    f"access:{vid}", t0, t0 + RESIDENT_SWAP_LATENCY,
                    category="access", index=index, viewset=vid,
                    client=self.node,
                    source=AccessSource.CLIENT_RESIDENT.value,
                    total_latency=RESIDENT_SWAP_LATENCY,
                )
                self.tracer.record(
                    "resident-swap", t0, t0 + RESIDENT_SWAP_LATENCY,
                    parent=root, category="stage",
                )
            self.metrics.record(
                AccessRecord(
                    index=index,
                    viewset_id=vid,
                    source=AccessSource.CLIENT_RESIDENT,
                    request_time=t0,
                    comm_latency=0.0,
                    decompress_seconds=0.0,
                    total_latency=RESIDENT_SWAP_LATENCY,
                )
            )
            return
        root = self.tracer.begin(f"access:{vid}", t=t0, category="access",
                                 index=index, viewset=vid, client=self.node)
        if self.tracer.enabled:
            self._access_spans[index] = root
        pending = self._outstanding.get(vid)
        if pending is not None:
            # the user re-entered a view set that is still in flight: the
            # wait continues and is recorded against this access too
            pending.append((index, t0))
            return
        self._outstanding[vid] = [(index, t0)]
        req_delay = self.network.path_latency(self.node, self.agent.node)

        def on_payload(payload: bytes, source: AccessSource,
                       comm_latency: float) -> None:
            # payload is at the agent NOW; remember the boundary times the
            # stage spans need before shipping it down to the console
            t_payload = self.queue.now
            mark = self.agent.take_flight_mark(vid)
            # ship the payload from the agent to the client console (the
            # user is waiting: DEMAND class)
            self.scheduler.submit(
                self.agent.node,
                self.node,
                len(payload),
                on_complete=lambda fl: finish(payload, source, comm_latency,
                                              t_payload, mark),
                label=f"to-client:{vid}",
                priority=Priority.DEMAND,
                span=root,
            )

        def finish(payload: bytes, source: AccessSource,
                   comm_latency: float, t_payload: float,
                   mark: Optional[Dict[str, Optional[float]]]) -> None:
            codec = codec_for_payload(payload)
            vs, wall = codec.decompress(payload)
            if self.cpu_seconds_per_byte is not None:
                # modeled CPU: keep host timing out of the event stream
                cost = len(payload) * self.cpu_seconds_per_byte
            else:
                cost = wall
            decompress = cost * self.cpu_scale
            self.queue.schedule_in(
                decompress,
                lambda: complete(vs, source, comm_latency, decompress,
                                 t_payload, mark),
                f"decompress:{vid}",
            )

        def complete(vs: ViewSet, source: AccessSource,
                     comm_latency: float, decompress: float,
                     t_payload: float,
                     mark: Optional[Dict[str, Optional[float]]]) -> None:
            waiters = self._outstanding.pop(vid, [(index, t0)])
            self._keep(key, vs)
            now = self.queue.now
            traced = self.tracer.enabled
            # cache hits never rode a flow this access; any mark present is
            # a leftover from the fetch that originally filled the cache
            t_first_flow = (
                mark.get("t_first_flow")
                if mark and source is not AccessSource.AGENT_CACHE else None
            )
            for w_index, w_t0 in waiters:
                if traced:
                    w_root = self._access_spans.pop(w_index, None)
                    if w_root is not None:
                        self._emit_stage_spans(
                            w_root, w_t0, t_payload - comm_latency,
                            t_first_flow, t_payload, now - decompress, now,
                        )
                        w_root.finish(
                            t=now, source=source.value,
                            total_latency=now - w_t0,
                            comm_latency=comm_latency,
                            decompress_seconds=decompress,
                        )
                self.metrics.record(
                    AccessRecord(
                        index=w_index,
                        viewset_id=vid,
                        source=source,
                        request_time=w_t0,
                        comm_latency=comm_latency,
                        decompress_seconds=decompress,
                        total_latency=now - w_t0,
                    )
                )

        self.queue.schedule_in(
            req_delay,
            lambda: self.agent.request(vid, on_payload, span=root),
            f"client-req:{vid}",
        )

    def _emit_stage_spans(
        self,
        root: SpanLike,
        w_t0: float,
        agent_arrival: float,
        t_first_flow: Optional[float],
        t_payload: float,
        t_ship_end: float,
        t_end: float,
    ) -> None:
        """Partition one access's wait into consecutive stage spans.

        Boundaries are forced monotone and clipped into the access window
        ``[w_t0, t_end]`` so the stage durations always sum *exactly* to the
        recorded total latency — including for coalesced accesses whose
        request arrived mid-flight.  When no data flow ever ran (agent cache
        hit) the transfer stages collapse into a single ``cache-lookup``.
        """
        if t_first_flow is None:
            names = ["request-rpc", "cache-lookup",
                     "ship-to-console", "decompress"]
            bounds = [w_t0, agent_arrival, t_payload, t_ship_end, t_end]
        else:
            names = ["request-rpc", "queue-wait", "network-transfer",
                     "ship-to-console", "decompress"]
            bounds = [w_t0, agent_arrival, t_first_flow, t_payload,
                      t_ship_end, t_end]
        clipped: List[float] = []
        prev = w_t0
        for b in bounds:
            prev = min(max(b, prev), t_end)
            clipped.append(prev)
        for name, cs, ce in zip(names, clipped, clipped[1:]):
            self.tracer.record(name, cs, ce, parent=root, category="stage")

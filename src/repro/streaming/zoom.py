"""Close-up zoom via runtime view-set generation (Section 3.2).

"A design issue exists, however, when a user zooms into the dataset for
close-up views to examine physical details.  Because such movement is often
localized ... it is feasible for the corresponding view set to be generated
on the fly."

A :class:`ZoomOverlay` is a second, higher-resolution view-set layer over
the same two-sphere geometry, **not** pre-distributed: its ids
(``zoom{level}:vs-i-j``) resolve through the DVS's server-agent table, so
the first request for any zoom view set takes the runtime-generation path
(LIFO scheduler → render → direct copy to the agent → depot upload → DVS
update) and subsequent requests are ordinary depot fetches.  This is
exactly the paper's pipeline for close-ups, reusing every existing module.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Tuple

from ..lightfield.lattice import CameraLattice, ViewSetKey, parse_viewset_id
from ..lightfield.source import ViewSetSource
from .dvs import DVSServer
from .server import ServerAgent

__all__ = ["ZoomOverlay", "zoom_vid", "parse_zoom_vid"]

_ZOOM_RE = re.compile(r"^zoom(\d+):(vs-\d+-\d+)$")


def zoom_vid(level: int, lattice: CameraLattice, key: ViewSetKey) -> str:
    """Namespaced id of a zoom-level view set."""
    if level < 1:
        raise ValueError("zoom level must be >= 1")
    return f"zoom{level}:{lattice.viewset_id(key)}"


def parse_zoom_vid(vid: str) -> Tuple[int, ViewSetKey]:
    """Inverse of :func:`zoom_vid`."""
    m = _ZOOM_RE.match(vid)
    if not m:
        raise ValueError(f"not a zoom view-set id: {vid!r}")
    return int(m.group(1)), parse_viewset_id(m.group(2))


@dataclass
class ZoomOverlay:
    """A higher-resolution view-set layer generated on demand.

    Parameters
    ----------
    level:
        Zoom level (1 = first close-up layer).
    source:
        Where zoom payloads come from — typically a
        :class:`~repro.lightfield.source.DatabaseSource` over a builder at
        ``base_resolution * magnification``, or a synthetic source in
        simulation experiments.
    """

    level: int
    source: ViewSetSource

    def __post_init__(self) -> None:
        if self.level < 1:
            raise ValueError("zoom level must be >= 1")

    @property
    def lattice(self) -> CameraLattice:
        """Lattice of the zoom layer."""
        return self.source.lattice

    def vid(self, key: ViewSetKey) -> str:
        """Namespaced id for a zoom view set."""
        return zoom_vid(self.level, self.lattice, key)

    def payload_for_vid(self, vid: str) -> bytes:
        """Resolve a zoom id to payload bytes (ServerAgent hook)."""
        level, key = parse_zoom_vid(vid)
        if level != self.level:
            raise ValueError(
                f"overlay is level {self.level}, id is level {level}"
            )
        return self.source.payload(key)

    def install(self, server_agent: ServerAgent, dvs: DVSServer) -> None:
        """Wire this overlay into a rig: ids route to runtime generation.

        The overlay's ids are registered with the DVS's server-agent table
        only (no exNodes yet) and the server agent learns to resolve them.
        """
        previous = server_agent._payload_for_vid

        def resolve(vid: str) -> bytes:
            if _ZOOM_RE.match(vid):
                return self.payload_for_vid(vid)
            if previous is not None:
                return previous(vid)
            return server_agent.source.payload(parse_viewset_id(vid))

        server_agent._payload_for_vid = resolve
        dvs.register_server_agent(
            server_agent.node,
            vids=[self.vid(k) for k in self.lattice.all_viewsets()],
        )

"""Transfer functions: scalar value → (RGB emission, opacity).

Light field rendering's selling point in the paper is that it handles "the
most general form of volume rendering with both semi-transparency and full
opaqueness".  The transfer function is where that generality lives: a
piecewise-linear map from normalized scalar values to color and extinction,
applied vectorized over ray-sample batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["TransferFunction", "preset"]


@dataclass
class TransferFunction:
    """Piecewise-linear color + opacity map over scalar values in [0, 1].

    Control points are ``(value, r, g, b, alpha)`` rows sorted by value.
    ``alpha`` is opacity per unit length in world space (extinction density);
    the ray caster converts it to per-step opacity with the Beer-Lambert
    correction, so rendering is step-size independent.
    """

    points: np.ndarray

    def __post_init__(self) -> None:
        pts = np.asarray(self.points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 5:
            raise ValueError("points must be (N, 5): value, r, g, b, alpha")
        if pts.shape[0] < 2:
            raise ValueError("need at least two control points")
        if not np.isfinite(pts).all():
            raise ValueError("control points must be finite")
        order = np.argsort(pts[:, 0], kind="stable")
        pts = pts[order]
        if pts[0, 0] > 0.0 or pts[-1, 0] < 1.0:
            raise ValueError("control points must span [0, 1]")
        if ((pts[:, 1:4] < 0) | (pts[:, 1:4] > 1)).any():
            raise ValueError("colors must be within [0, 1]")
        if (pts[:, 4] < 0).any():
            raise ValueError("alpha must be non-negative")
        self.points = pts

    @classmethod
    def from_list(
        cls, rows: Sequence[Tuple[float, float, float, float, float]]
    ) -> TransferFunction:
        """Build from a list of (value, r, g, b, alpha) tuples."""
        return cls(points=np.asarray(rows, dtype=np.float64))

    def __call__(self, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Map scalars to (colors ``(N, 3)``, extinction ``(N,)``).

        Input values are clipped into [0, 1].
        """
        v = np.clip(np.asarray(values, dtype=np.float64), 0.0, 1.0)
        xp = self.points[:, 0]
        rgb = np.stack(
            [np.interp(v, xp, self.points[:, 1 + c]) for c in range(3)],
            axis=-1,
        )
        alpha = np.interp(v, xp, self.points[:, 4])
        return rgb.astype(np.float32), alpha.astype(np.float32)

    def opacity_only(self, values: np.ndarray) -> np.ndarray:
        """Extinction densities for scalars (occlusion precomputation)."""
        v = np.clip(np.asarray(values, dtype=np.float64), 0.0, 1.0)
        return np.interp(v, self.points[:, 0], self.points[:, 4]).astype(
            np.float32
        )

    def max_opacity_in(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Maximum extinction over scalar ranges ``[lo, hi]`` (vectorized).

        For a piecewise-linear opacity map the maximum over an interval is
        attained either at an endpoint or at a control point inside it, so
        the bound is *exact*, not merely conservative.  ``lo``/``hi`` are
        broadcast together; values are clipped into [0, 1] exactly like
        :meth:`__call__` clips its inputs.  This is the query the macrocell
        empty-space classifier (:class:`repro.volume.accel.MacrocellGrid`)
        uses to mark cells transparent under the current classification.
        """
        lo = np.clip(np.asarray(lo, dtype=np.float64), 0.0, 1.0)
        hi = np.clip(np.asarray(hi, dtype=np.float64), 0.0, 1.0)
        lo, hi = np.broadcast_arrays(lo, hi)
        if (lo > hi).any():
            raise ValueError("range lower bounds exceed upper bounds")
        xp = self.points[:, 0]
        fp = self.points[:, 4]
        out = np.maximum(np.interp(lo, xp, fp), np.interp(hi, xp, fp))
        # control points are few; loop over them, vectorized over queries
        for vk, ak in zip(xp, fp):
            if ak > 0.0:
                inside = (lo <= vk) & (vk <= hi)
                out = np.where(inside, np.maximum(out, ak), out)
        return out.astype(np.float32)


_PRESETS = {
    # emphasize both lobes of a potential field: blue negative-ish lows,
    # red highs, transparent far field — the classic negHip look.  The
    # synthetic negHip's zero-potential background normalizes to ~0.23-0.38,
    # so the fully-transparent band brackets that range: most of the volume
    # is genuine empty space, as in the paper's renders (and as the
    # macrocell skipping acceleration expects).
    "neghip": [
        (0.00, 0.05, 0.05, 0.60, 6.0),
        (0.10, 0.10, 0.30, 0.90, 3.0),
        (0.20, 0.05, 0.05, 0.05, 0.0),
        (0.50, 0.05, 0.05, 0.05, 0.0),
        (0.75, 0.95, 0.55, 0.10, 5.0),
        (1.00, 1.00, 0.90, 0.30, 9.0),
    ],
    # mostly transparent with a bright opaque core
    "hot-core": [
        (0.00, 0.00, 0.00, 0.00, 0.0),
        (0.40, 0.30, 0.05, 0.02, 0.0),
        (0.70, 0.90, 0.40, 0.05, 6.0),
        (1.00, 1.00, 1.00, 0.60, 18.0),
    ],
    # a translucent cool-to-warm ramp exercising semi-transparency
    "ramp": [
        (0.00, 0.10, 0.15, 0.70, 0.0),
        (0.50, 0.60, 0.60, 0.60, 2.0),
        (1.00, 0.90, 0.30, 0.10, 5.0),
    ],
    # near-binary isosurface-like step: tests full opaqueness
    "opaque-shell": [
        (0.00, 0.00, 0.00, 0.00, 0.0),
        (0.49, 0.00, 0.00, 0.00, 0.0),
        (0.51, 0.80, 0.80, 0.85, 60.0),
        (1.00, 0.95, 0.95, 1.00, 60.0),
    ],
}


def preset(name: str) -> TransferFunction:
    """A named transfer function preset; raises KeyError on unknown names."""
    try:
        rows = _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(_PRESETS)}"
        ) from None
    return TransferFunction.from_list(rows)


def preset_names() -> List[str]:
    """All available preset names."""
    return sorted(_PRESETS)

"""Volume dataset substrate: scalar grids, synthetic datasets, transfer
functions.

Provides the data the light field generator ray-casts — including
``neg_hip()``, the synthetic stand-in for the paper's 64³ negHip protein
potential dataset.
"""

from .accel import ActiveCells, MacrocellGrid
from .flow import (
    VectorField,
    helicity,
    speed,
    streamline_density,
    tornado_flow,
    trace_streamlines,
    vorticity_magnitude,
)
from .grid import VolumeGrid
from .io import read_raw, read_vgrid, write_raw, write_vgrid
from .synthetic import (
    gaussian_blobs,
    hydrogen_orbital,
    lattice_points,
    neg_hip,
    vortex,
)
from .transfer import TransferFunction, preset, preset_names

__all__ = [
    "ActiveCells",
    "MacrocellGrid",
    "VectorField",
    "VolumeGrid",
    "helicity",
    "read_raw",
    "read_vgrid",
    "speed",
    "streamline_density",
    "tornado_flow",
    "trace_streamlines",
    "vorticity_magnitude",
    "write_raw",
    "write_vgrid",
    "TransferFunction",
    "gaussian_blobs",
    "hydrogen_orbital",
    "lattice_points",
    "neg_hip",
    "preset",
    "preset_names",
    "vortex",
]

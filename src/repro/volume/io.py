"""Volume file I/O.

The paper's negHip dataset circulated as a raw little-endian uint8 brick
(64×64×64).  :func:`read_raw`/:func:`write_raw` handle that format (any
numpy dtype, C order, x-fastest), plus a self-describing ``.vgrid`` wrapper
(a tiny JSON header followed by the raw block) so repro-generated volumes
round-trip without out-of-band shape knowledge.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from .grid import VolumeGrid

__all__ = ["read_raw", "write_raw", "read_vgrid", "write_vgrid"]

_MAGIC = b"VGRID\n"


def read_raw(
    path: Union[str, Path],
    shape: Tuple[int, int, int],
    dtype: str = "uint8",
    extent: float = 1.0,
    name: str = "",
    normalize: bool = True,
) -> VolumeGrid:
    """Load a raw volume brick (the classic volvis distribution format).

    ``shape`` is (nx, ny, nz) with x varying fastest on disk, matching how
    negHip and friends were shipped.  With ``normalize`` the samples are
    rescaled to [0, 1] for transfer-function use.
    """
    raw = Path(path).read_bytes()
    dt = np.dtype(dtype)
    expected = int(np.prod(shape)) * dt.itemsize
    if len(raw) != expected:
        raise ValueError(
            f"{path}: got {len(raw)} bytes, expected {expected} for "
            f"{shape} {dtype}"
        )
    # disk order: x fastest -> stored as (nz, ny, nx); transpose to x,y,z
    data = (
        np.frombuffer(raw, dtype=dt)
        .reshape(shape[2], shape[1], shape[0])
        .transpose(2, 1, 0)
        .astype(np.float32)
    )
    grid = VolumeGrid(
        data=data, extent=extent, name=name or Path(path).stem
    )
    return grid.normalized() if normalize else grid


def write_raw(path: Union[str, Path], volume: VolumeGrid,
              dtype: str = "uint8") -> None:
    """Write a volume as a raw brick (x fastest), quantizing if needed."""
    dt = np.dtype(dtype)
    data = volume.data
    if dt == np.uint8:
        lo, hi = volume.value_range
        span = (hi - lo) or 1.0
        data = np.clip(
            np.rint((volume.data - lo) / span * 255.0), 0, 255
        ).astype(np.uint8)
    else:
        data = data.astype(dt)
    Path(path).write_bytes(data.transpose(2, 1, 0).tobytes())


def write_vgrid(path: Union[str, Path], volume: VolumeGrid) -> None:
    """Write the self-describing format: JSON header + float32 block."""
    header = {
        "shape": list(volume.shape),
        "extent": volume.extent,
        "name": volume.name,
        "dtype": "float32",
    }
    blob = json.dumps(header).encode("ascii")
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(len(blob).to_bytes(4, "little"))
        fh.write(blob)
        fh.write(volume.data.astype(np.float32).tobytes())


def read_vgrid(path: Union[str, Path]) -> VolumeGrid:
    """Read a ``.vgrid`` file written by :func:`write_vgrid`."""
    raw = Path(path).read_bytes()
    if not raw.startswith(_MAGIC):
        raise ValueError(f"{path}: not a vgrid file")
    off = len(_MAGIC)
    hlen = int.from_bytes(raw[off:off + 4], "little")
    off += 4
    try:
        header = json.loads(raw[off:off + hlen])
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: corrupt vgrid header") from exc
    off += hlen
    shape = tuple(header["shape"])
    data = np.frombuffer(
        raw[off:], dtype=np.dtype(header.get("dtype", "float32"))
    )
    if data.size != int(np.prod(shape)):
        raise ValueError(f"{path}: truncated vgrid payload")
    return VolumeGrid(
        data=data.reshape(shape).copy(),
        extent=float(header.get("extent", 1.0)),
        name=header.get("name", Path(path).stem),
    )

"""Min-max macrocell grid: empty-space skipping for the generator kernel.

Database generation is the paper's dominant offline cost (hours of
32-processor ray casting per database).  Most of that work is wasted on
empty space: under a typical classification the far field of the dataset
maps to zero extinction, yet the brute-force marcher samples it anyway.

This module provides the classic fix — a *macrocell* grid (Levoy-style
min-max octree flattened to one level): the volume is partitioned into
``cell_size``³-voxel cells storing the scalar min/max over each cell, and a
transfer function's exact range-maximum opacity query
(:meth:`~repro.volume.transfer.TransferFunction.max_opacity_in`) classifies
cells as active/inactive *without touching voxels*.  The ray caster then
clips each ray's march to the span of active cells it can intersect.

Conservativeness contract
-------------------------
Trilinear samples inside cell ``c`` depend only on voxels with indices in
``[c*cs, (c+1)*cs]`` inclusive (the +1 boundary plane is shared with the
next cell), and the interpolated value always lies within the min/max of
its 8 surrounding voxels — so ``minv``/``maxv`` computed over that inclusive
slab bound every sample the renderer can take inside the cell.  A cell
whose value range maps to zero maximum extinction contributes *exactly*
nothing to the composited image, which is why skipping is lossless.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from .grid import VolumeGrid
from .transfer import TransferFunction

__all__ = ["MacrocellGrid", "ActiveCells"]


def _reduce_axis(
    a: np.ndarray, axis: int, cs: int, op: Callable[..., np.ndarray]
) -> np.ndarray:
    """Overlapping block-reduce along one axis: cell c covers voxel indices
    [c*cs, (c+1)*cs] inclusive (the shared boundary plane)."""
    n = a.shape[axis]
    nc = max(1, math.ceil((n - 1) / cs))
    out = []
    for c in range(nc):
        sl = [slice(None)] * a.ndim
        sl[axis] = slice(c * cs, min((c + 1) * cs + 1, n))
        out.append(op(a[tuple(sl)], axis=axis))
    return np.stack(out, axis=axis)


def _dilate26(mask: np.ndarray) -> np.ndarray:
    """Binary dilation with the full 3×3×3 structuring element."""
    nx, ny, nz = mask.shape
    padded = np.pad(mask, 1, constant_values=False)
    out = np.zeros_like(mask)
    for dx in range(3):
        for dy in range(3):
            for dz in range(3):
                out |= padded[dx:dx + nx, dy:dy + ny, dz:dz + nz]
    return out


@dataclass
class MacrocellGrid:
    """Per-macrocell scalar min/max over a :class:`VolumeGrid`.

    Built once per volume (offline, independent of the transfer function)
    with :meth:`build`; classified against a transfer function with
    :meth:`classify`, which is cheap enough to redo whenever the TF changes.
    """

    cell_size: int
    minv: np.ndarray        # (ncx, ncy, ncz) float32
    maxv: np.ndarray        # (ncx, ncy, ncz) float32
    world_min: np.ndarray   # (3,) lower corner of the volume bbox
    cell_world: float       # world-space edge length of one macrocell

    @classmethod
    def build(cls, volume: VolumeGrid, cell_size: int = 4) -> MacrocellGrid:
        """Compute the min-max grid for ``volume``.

        ``cell_size`` is in voxels per cell edge.  Classic macrocell
        practice uses ~8³, but the interval pass queries a mask dilated by
        one full cell, so smaller cells keep the conservative envelope much
        tighter: on the 64³ negHip scene, cell_size 4 skips ~2× more
        samples than 8 at negligible extra build cost, hence the default.
        """
        if cell_size < 2:
            raise ValueError("cell_size must be >= 2")
        data = volume.data
        minv = data
        maxv = data
        for axis in range(3):
            minv = _reduce_axis(minv, axis, cell_size, np.min)
            maxv = _reduce_axis(maxv, axis, cell_size, np.max)
        return cls(
            cell_size=int(cell_size),
            minv=np.ascontiguousarray(minv, dtype=np.float32),
            maxv=np.ascontiguousarray(maxv, dtype=np.float32),
            world_min=volume.world_min.copy(),
            cell_world=float(cell_size * volume._voxel),
        )

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Macrocell counts per axis."""
        return self.minv.shape  # type: ignore[return-value]

    def classify(
        self, transfer: TransferFunction, eps: float = 0.0
    ) -> ActiveCells:
        """Mark cells active iff their value range can have extinction > eps.

        ``eps = 0`` (the default) is the lossless setting: only cells whose
        *maximum possible* extinction under ``transfer`` is exactly zero are
        skipped, so the accelerated render equals the brute-force one.
        """
        if eps < 0:
            raise ValueError("eps must be non-negative")
        sigma_max = transfer.max_opacity_in(self.minv, self.maxv)
        mask = sigma_max > eps
        return ActiveCells(
            mask=mask,
            reachable=_dilate26(mask),
            world_min=self.world_min,
            cell_world=self.cell_world,
        )


@dataclass
class ActiveCells:
    """A macrocell activity mask classified under one transfer function.

    ``reachable`` is ``mask`` dilated by one cell in all 26 directions; the
    interval pass queries it at points spaced one cell edge apart along each
    ray, and the dilation guarantees a sample that close to an active cell
    always lands in a flagged cell — so no active cell is missed, even one
    the ray only clips at a corner.
    """

    mask: np.ndarray       # (ncx, ncy, ncz) bool — σ_max > eps
    reachable: np.ndarray  # mask dilated by one cell per axis
    world_min: np.ndarray
    cell_world: float

    @property
    def active_fraction(self) -> float:
        """Fraction of macrocells that are active (1 - empty-space frac)."""
        return float(self.mask.mean())

    def cell_of(self, points: np.ndarray) -> np.ndarray:
        """Macrocell integer indices for ``(N, 3)`` world points, clipped
        into the grid (out-of-box points map to the nearest boundary cell).
        """
        idx = np.floor(
            (np.asarray(points, dtype=np.float64) - self.world_min)
            / self.cell_world
        ).astype(np.intp)
        for a, n in enumerate(self.mask.shape):
            np.clip(idx[:, a], 0, n - 1, out=idx[:, a])
        return idx

    def _query_flags(
        self,
        origins: np.ndarray,
        dirs: np.ndarray,
        t_near: np.ndarray,
        t_far: np.ndarray,
    ) -> np.ndarray:
        """Per-(ray, query) activity flags from the vectorized interval pass.

        Walks each ray's ``[t_near, t_far]`` span in steps of one cell edge
        (``delta``), querying the dilated mask at query-segment midpoints
        ``t_near + (q + 0.5) * delta``.  Any t at which the ray could sample
        an active cell lies within ``delta/2`` of some query point, and the
        one-cell dilation guarantees that query is flagged — so unflagged
        query segments provably contain zero extinction only.

        Directions must be unit-length (camera rays are), so t is arc
        length and the delta spacing argument holds.
        """
        o = np.asarray(origins, dtype=np.float64)
        d = np.asarray(dirs, dtype=np.float64)
        n = len(o)
        span = t_far - t_near
        valid = span > 0
        if not valid.any() or not self.mask.any():
            return np.zeros((n, 0), dtype=bool)
        delta = self.cell_world
        qmax = int(np.ceil(float(span[valid].max()) / delta))
        flags = np.zeros((n, qmax), dtype=bool)
        reach = self.reachable
        for q in range(qmax):
            live = np.nonzero(valid & (q * delta < span))[0]
            if live.size == 0:
                break
            tq = t_near[live] + (q + 0.5) * delta
            pos = o[live] + tq[:, None] * d[live]
            idx = self.cell_of(pos)
            flags[live, q] = reach[idx[:, 0], idx[:, 1], idx[:, 2]]
        return flags

    def ray_segments(
        self,
        origins: np.ndarray,
        dirs: np.ndarray,
        t_near: np.ndarray,
        t_far: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Conservative active segments per ray, in CSR layout.

        Returns ``(seg_t0, seg_t1, ray_ptr)``: ray ``i``'s segments are
        ``seg_t0[ray_ptr[i]:ray_ptr[i+1]]`` / ``seg_t1[...]``, sorted by t
        and clipped into ``[t_near[i], t_far[i]]``.  Every t at which ray
        ``i`` can sample nonzero extinction lies inside one of its
        segments; rays with no segments never do and can skip marching
        entirely.  Consecutive flagged query cells merge into one segment,
        so interior empty gaps (e.g. the transparent band between the two
        negHip lobes) separate segments and are skipped by the marcher.
        """
        flags = self._query_flags(origins, dirs, t_near, t_far)
        n = len(flags)
        if flags.shape[1] == 0:
            ray_ptr = np.zeros(n + 1, dtype=np.intp)
            empty = np.empty(0, dtype=np.float64)
            return empty, empty.copy(), ray_ptr
        delta = self.cell_world
        padded = np.pad(flags, ((0, 0), (1, 1)))
        starts = flags & ~padded[:, :-2]
        ends = flags & ~padded[:, 2:]
        ray_s, q_s = np.nonzero(starts)   # row-major: per-ray, ascending q
        ray_e, q_e = np.nonzero(ends)     # pairs 1:1 with starts
        # flagged query q covers t in [t_near + q*delta, t_near + (q+1)*delta]
        seg_t0 = t_near[ray_s] + q_s * delta
        seg_t1 = np.minimum(t_near[ray_e] + (q_e + 1) * delta, t_far[ray_e])
        counts = np.bincount(ray_s, minlength=n)
        ray_ptr = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(counts, out=ray_ptr[1:])
        return seg_t0, seg_t1, ray_ptr

    def ray_intervals(
        self,
        origins: np.ndarray,
        dirs: np.ndarray,
        t_near: np.ndarray,
        t_far: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Conservative overall active span ``[t0, t1]`` per ray.

        The coarse entry/exit summary of :meth:`ray_segments`: ``t0``/``t1``
        bound the first and last active segment; ``hit`` is False for rays
        that can never sample nonzero extinction (their ``t0``/``t1`` are
        ``+inf``/``-inf``).
        """
        seg_t0, seg_t1, ray_ptr = self.ray_segments(
            origins, dirs, t_near, t_far
        )
        n = len(ray_ptr) - 1
        t0 = np.full(n, np.inf)
        t1 = np.full(n, -np.inf)
        hit = ray_ptr[1:] > ray_ptr[:-1]
        who = np.nonzero(hit)[0]
        t0[who] = seg_t0[ray_ptr[:-1][who]]
        t1[who] = seg_t1[ray_ptr[1:][who] - 1]
        return t0, t1, hit

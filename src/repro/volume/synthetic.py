"""Synthetic scientific volume datasets.

The paper's test dataset is **negHip**: "a simulation of electrical potential
of a negative high-energy protein", 64³ voxels.  That dataset is not
redistributable, so :func:`neg_hip` synthesizes the closest equivalent — the
electric potential field of a cluster of point charges with net negative
charge, evaluated on the same 64³ lattice with a softened Coulomb kernel.
The result has the same qualitative structure the paper's transfer functions
classify: smooth positive/negative lobes around atomic sites.

Additional generators (:func:`gaussian_blobs`, :func:`vortex`,
:func:`hydrogen_orbital`) provide the varied workloads used by examples and
the ablation benchmarks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .grid import VolumeGrid

__all__ = [
    "neg_hip",
    "gaussian_blobs",
    "vortex",
    "hydrogen_orbital",
    "lattice_points",
]


def lattice_points(shape: Tuple[int, int, int]) -> np.ndarray:
    """World-like coordinates in [-1, 1]³ for every voxel, shape (N, 3)."""
    axes = [np.linspace(-1.0, 1.0, n) for n in shape]
    gx, gy, gz = np.meshgrid(*axes, indexing="ij")
    return np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)


def neg_hip(
    size: int = 64,
    n_charges: int = 24,
    net_negative_fraction: float = 0.65,
    softening: float = 0.08,
    seed: int = 2003,
) -> VolumeGrid:
    """Synthetic negHip: softened Coulomb potential of a charge cluster.

    Charges are placed inside a sphere of radius 0.6 (so the interesting
    structure is well inside the bounding box, as in the protein dataset);
    ``net_negative_fraction`` of them are negative, making the aggregate
    potential negative-dominated like the original "negative high-energy
    protein".  The field is normalized to [0, 1] for transfer-function use.
    """
    if size < 8:
        raise ValueError("size must be >= 8")
    if not 0.0 <= net_negative_fraction <= 1.0:
        raise ValueError("net_negative_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    # charge sites: clustered positions, mildly correlated to mimic a chain
    centers = np.empty((n_charges, 3))
    pos = rng.normal(scale=0.15, size=3)
    for i in range(n_charges):
        step = rng.normal(scale=0.18, size=3)
        pos = np.clip(pos * 0.8 + step, -0.6, 0.6)
        centers[i] = pos
    signs = np.where(
        rng.random(n_charges) < net_negative_fraction, -1.0, 1.0
    )
    magnitudes = rng.uniform(0.5, 1.5, size=n_charges)
    charges = signs * magnitudes

    pts = lattice_points((size, size, size))
    # softened Coulomb: q / sqrt(r² + eps²), vectorized over all voxels
    diff = pts[:, None, :] - centers[None, :, :]
    r2 = np.einsum("ijk,ijk->ij", diff, diff)
    potential = (charges[None, :] / np.sqrt(r2 + softening**2)).sum(axis=1)
    field = potential.reshape(size, size, size)
    lo, hi = field.min(), field.max()
    field = (field - lo) / (hi - lo)
    return VolumeGrid(data=field.astype(np.float32), name="negHip-synthetic")


def gaussian_blobs(
    size: int = 64, n_blobs: int = 8, seed: int = 7
) -> VolumeGrid:
    """A fuel-injection-like dataset: superposed anisotropic Gaussians."""
    rng = np.random.default_rng(seed)
    pts = lattice_points((size, size, size))
    field = np.zeros(len(pts))
    for _ in range(n_blobs):
        center = rng.uniform(-0.5, 0.5, size=3)
        sigma = rng.uniform(0.08, 0.3, size=3)
        amp = rng.uniform(0.4, 1.0)
        d = (pts - center) / sigma
        field += amp * np.exp(-0.5 * np.einsum("ij,ij->i", d, d))
    field = field.reshape(size, size, size)
    field /= max(field.max(), 1e-12)
    return VolumeGrid(data=field.astype(np.float32), name="blobs")


def vortex(size: int = 64, twists: float = 3.0) -> VolumeGrid:
    """A tornado-like dataset: vorticity magnitude of a helical flow."""
    pts = lattice_points((size, size, size))
    x, y, z = pts[:, 0], pts[:, 1], pts[:, 2]
    # helical core drifting with height
    cx = 0.3 * np.sin(twists * z)
    cy = 0.3 * np.cos(twists * z)
    r = np.sqrt((x - cx) ** 2 + (y - cy) ** 2)
    core = np.exp(-((r / 0.25) ** 2))
    taper = np.exp(-((z / 0.9) ** 4))
    field = (core * taper).reshape(size, size, size)
    field /= max(field.max(), 1e-12)
    return VolumeGrid(data=field.astype(np.float32), name="vortex")


def hydrogen_orbital(size: int = 64) -> VolumeGrid:
    """|psi|² of a hydrogen 3d_z² orbital — a classic volume benchmark."""
    pts = lattice_points((size, size, size)) * 12.0  # Bohr-ish radii
    x, y, z = pts[:, 0], pts[:, 1], pts[:, 2]
    r = np.sqrt(x**2 + y**2 + z**2) + 1e-9
    cos_t = z / r
    # R_32 ∝ r² e^{-r/3}; Y_20 ∝ 3cos²θ - 1
    psi = (r**2) * np.exp(-r / 3.0) * (3.0 * cos_t**2 - 1.0)
    field = (psi**2).reshape(size, size, size)
    field /= max(field.max(), 1e-12)
    return VolumeGrid(data=field.astype(np.float32), name="hydrogen-3dz2")

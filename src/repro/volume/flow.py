"""Flow-field support (Section 5 future work: "flow fields").

Light fields capture *appearance*, so visualizing a vector field through
this system means deriving renderable scalar volumes from it.  This module
provides that bridge:

* :class:`VectorField` — a dense 3-D vector field with trilinear sampling;
* derived scalar volumes: :func:`vorticity_magnitude` (the classic tornado
  look), :func:`helicity` and :func:`speed` — each returns a
  :class:`~repro.volume.grid.VolumeGrid` ready for the light field builder;
* :func:`trace_streamlines` — vectorized RK4 particle tracing, and
  :func:`streamline_density` which splats traced streamlines into a scalar
  volume (a line-integral-convolution-flavored representation that renders
  well through a transfer function);
* :func:`tornado_flow` — the standard synthetic tornado vector field used
  by flow-vis papers of the era.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .grid import VolumeGrid
from .synthetic import lattice_points

__all__ = [
    "VectorField",
    "tornado_flow",
    "speed",
    "vorticity_magnitude",
    "helicity",
    "trace_streamlines",
    "streamline_density",
]


@dataclass
class VectorField:
    """A dense vector field on the same world frame as :class:`VolumeGrid`.

    ``data`` is ``(nx, ny, nz, 3)``; the field occupies the cube scaled so
    its largest axis spans ``[-extent, extent]``.
    """

    data: np.ndarray
    extent: float = 1.0
    name: str = "flow"

    def __post_init__(self) -> None:
        self.data = np.ascontiguousarray(self.data, dtype=np.float32)
        if self.data.ndim != 4 or self.data.shape[3] != 3:
            raise ValueError(
                f"vector field must be (nx, ny, nz, 3), got {self.data.shape}"
            )
        if min(self.data.shape[:3]) < 2:
            raise ValueError("each axis needs at least 2 samples")
        if not np.isfinite(self.data).all():
            raise ValueError("vector field contains non-finite samples")
        shape = np.asarray(self.data.shape[:3], dtype=np.float64)
        self._voxel = 2.0 * self.extent / (shape.max() - 1.0)
        self._half_size = (shape - 1.0) * self._voxel / 2.0

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Grid dimensions."""
        return self.data.shape[:3]  # type: ignore[return-value]

    def sample(self, points: np.ndarray) -> np.ndarray:
        """Trilinear vector interpolation at ``(N, 3)`` world points.

        Outside the bounds the field is zero (particles stop).
        """
        pts = np.asarray(points, dtype=np.float64)
        idx = (pts + self._half_size) / self._voxel
        nx, ny, nz = self.shape
        inside = (
            (idx[:, 0] >= 0) & (idx[:, 0] <= nx - 1)
            & (idx[:, 1] >= 0) & (idx[:, 1] <= ny - 1)
            & (idx[:, 2] >= 0) & (idx[:, 2] <= nz - 1)
        )
        out = np.zeros((len(pts), 3), dtype=np.float32)
        if not inside.any():
            return out
        p = idx[inside]
        i0 = np.floor(p).astype(np.intp)
        i0[:, 0] = np.clip(i0[:, 0], 0, nx - 2)
        i0[:, 1] = np.clip(i0[:, 1], 0, ny - 2)
        i0[:, 2] = np.clip(i0[:, 2], 0, nz - 2)
        f = (p - i0).astype(np.float32)
        x0, y0, z0 = i0[:, 0], i0[:, 1], i0[:, 2]
        d = self.data
        fx = f[:, 0:1]
        fy = f[:, 1:2]
        fz = f[:, 2:3]
        c00 = d[x0, y0, z0] * (1 - fx) + d[x0 + 1, y0, z0] * fx
        c10 = d[x0, y0 + 1, z0] * (1 - fx) + d[x0 + 1, y0 + 1, z0] * fx
        c01 = d[x0, y0, z0 + 1] * (1 - fx) + d[x0 + 1, y0, z0 + 1] * fx
        c11 = d[x0, y0 + 1, z0 + 1] * (1 - fx) + d[x0 + 1, y0 + 1, z0 + 1] * fx
        c0 = c00 * (1 - fy) + c10 * fy
        c1 = c01 * (1 - fy) + c11 * fy
        out[inside] = c0 * (1 - fz) + c1 * fz
        return out

    def curl(self) -> VectorField:
        """The discrete curl (central differences), as a new field."""
        h = self._voxel
        v = self.data.astype(np.float64)
        dvz_dy = np.gradient(v[..., 2], h, axis=1)
        dvy_dz = np.gradient(v[..., 1], h, axis=2)
        dvx_dz = np.gradient(v[..., 0], h, axis=2)
        dvz_dx = np.gradient(v[..., 2], h, axis=0)
        dvy_dx = np.gradient(v[..., 1], h, axis=0)
        dvx_dy = np.gradient(v[..., 0], h, axis=1)
        curl = np.stack(
            [dvz_dy - dvy_dz, dvx_dz - dvz_dx, dvy_dx - dvx_dy], axis=-1
        )
        return VectorField(data=curl.astype(np.float32),
                           extent=self.extent, name=f"curl({self.name})")


def tornado_flow(size: int = 32, time: float = 0.0) -> VectorField:
    """The classic synthetic tornado: swirl around a wandering core."""
    if size < 4:
        raise ValueError("size must be >= 4")
    pts = lattice_points((size, size, size))
    x, y, z = pts[:, 0], pts[:, 1], pts[:, 2]
    # core wanders with height (and with time, for animated datasets)
    cx = 0.25 * np.sin(2.0 * z + time)
    cy = 0.25 * np.cos(2.0 * z + time)
    dx = x - cx
    dy = y - cy
    r2 = dx * dx + dy * dy + 1e-4
    swirl = np.exp(-4.0 * r2)
    vx = -dy / np.sqrt(r2) * swirl
    vy = dx / np.sqrt(r2) * swirl
    vz = 0.4 * swirl + 0.05
    data = np.stack([vx, vy, vz], axis=-1).reshape(size, size, size, 3)
    return VectorField(data=data.astype(np.float32), name="tornado")


def speed(field: VectorField) -> VolumeGrid:
    """|v| as a renderable, normalized scalar volume."""
    mag = np.linalg.norm(field.data, axis=-1)
    peak = float(mag.max()) or 1.0
    return VolumeGrid(
        data=(mag / peak).astype(np.float32),
        extent=field.extent,
        name=f"speed({field.name})",
    )


def vorticity_magnitude(field: VectorField) -> VolumeGrid:
    """|curl v|, normalized — the standard tornado rendering scalar."""
    grid = speed(field.curl())
    grid.name = f"vorticity({field.name})"
    return grid


def helicity(field: VectorField) -> VolumeGrid:
    """v . curl(v), rescaled to [0, 1] (0.5 = zero helicity)."""
    c = field.curl()
    h = np.einsum("...i,...i->...", field.data.astype(np.float64),
                  c.data.astype(np.float64))
    peak = float(np.abs(h).max()) or 1.0
    return VolumeGrid(
        data=(0.5 + 0.5 * h / peak).astype(np.float32),
        extent=field.extent,
        name=f"helicity({field.name})",
    )


def trace_streamlines(
    field: VectorField,
    seeds: np.ndarray,
    step: float = 0.02,
    n_steps: int = 200,
) -> np.ndarray:
    """Vectorized RK4 tracing: ``(n_seeds, n_steps+1, 3)`` positions.

    Particles leaving the domain freeze in place (the field is zero
    outside, so all RK4 increments vanish).
    """
    if step <= 0 or n_steps < 1:
        raise ValueError("step and n_steps must be positive")
    pos = np.asarray(seeds, dtype=np.float64).copy()
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError("seeds must be (N, 3)")
    out = np.empty((len(pos), n_steps + 1, 3), dtype=np.float32)
    out[:, 0] = pos
    for k in range(1, n_steps + 1):
        k1 = field.sample(pos)
        k2 = field.sample(pos + 0.5 * step * k1)
        k3 = field.sample(pos + 0.5 * step * k2)
        k4 = field.sample(pos + step * k3)
        pos = pos + (step / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        out[:, k] = pos
    return out


def streamline_density(
    field: VectorField,
    n_seeds: int = 256,
    size: int = 64,
    step: float = 0.02,
    n_steps: int = 200,
    seed: int = 11,
    sigma_voxels: float = 1.0,
) -> VolumeGrid:
    """Splat traced streamlines into a renderable density volume.

    Seeds are drawn uniformly in the domain; every traced sample deposits
    into its nearest voxel and the result is smoothed with a separable
    Gaussian — a cheap LIC-flavored scalar that shows the flow structure
    through the ordinary volume renderer (and hence through light fields).
    """
    from scipy.ndimage import gaussian_filter

    rng = np.random.default_rng(seed)
    seeds = rng.uniform(-0.9 * field.extent, 0.9 * field.extent,
                        size=(n_seeds, 3))
    lines = trace_streamlines(field, seeds, step=step, n_steps=n_steps)
    pts = lines.reshape(-1, 3)
    # world -> voxel indices of the output volume
    half = field.extent
    idx = np.clip(
        ((pts + half) / (2 * half) * (size - 1)).round().astype(np.intp),
        0, size - 1,
    )
    vol = np.zeros((size, size, size), dtype=np.float64)
    np.add.at(vol, (idx[:, 0], idx[:, 1], idx[:, 2]), 1.0)
    vol = gaussian_filter(vol, sigma=sigma_voxels)
    peak = vol.max() or 1.0
    return VolumeGrid(
        data=(vol / peak).astype(np.float32),
        extent=field.extent,
        name=f"streamlines({field.name})",
    )

"""Regular-grid scalar volumes with trilinear sampling and gradients.

The paper's generator ray-casts a volume dataset (the 64³ negHip electric
potential field) into light field sample views.  This module provides that
volume substrate: a dense scalar grid positioned in world space, with
vectorized trilinear interpolation and central-difference gradients — the two
sampling primitives the ray caster needs.

All sampling functions take ``(N, 3)`` arrays of world-space points and return
per-point values/gradients; there are no per-point Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["VolumeGrid"]


@dataclass
class VolumeGrid:
    """A dense scalar field on a regular grid, centered in world space.

    Parameters
    ----------
    data:
        ``(nx, ny, nz)`` float array of scalar samples, C-contiguous.
    extent:
        World-space half-width of the largest axis; the volume is scaled
        uniformly so its largest dimension spans ``[-extent, +extent]`` and
        centered at the origin (this matches the concentric-sphere
        parameterization, which wants the dataset near the origin).
    name:
        Identifier used in database metadata.
    """

    data: np.ndarray
    extent: float = 1.0
    name: str = "volume"

    def __post_init__(self) -> None:
        self.data = np.ascontiguousarray(self.data, dtype=np.float32)
        if self.data.ndim != 3:
            raise ValueError(f"volume must be 3-D, got shape {self.data.shape}")
        if min(self.data.shape) < 2:
            raise ValueError("each volume axis needs at least 2 samples")
        if not np.isfinite(self.data).all():
            raise ValueError("volume contains non-finite samples")
        if self.extent <= 0:
            raise ValueError("extent must be positive")
        shape = np.asarray(self.data.shape, dtype=np.float64)
        # uniform scale: world units per voxel along the largest axis
        self._voxel = 2.0 * self.extent / (shape.max() - 1.0)
        self._half_size = (shape - 1.0) * self._voxel / 2.0

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int, int]:
        """Grid dimensions (nx, ny, nz)."""
        return self.data.shape  # type: ignore[return-value]

    @property
    def world_min(self) -> np.ndarray:
        """Lower corner of the bounding box in world space."""
        return -self._half_size

    @property
    def world_max(self) -> np.ndarray:
        """Upper corner of the bounding box in world space."""
        return self._half_size

    @property
    def bounding_radius(self) -> float:
        """Radius of the sphere circumscribing the bounding box."""
        return float(np.linalg.norm(self._half_size))

    @property
    def value_range(self) -> Tuple[float, float]:
        """(min, max) of the scalar field."""
        return float(self.data.min()), float(self.data.max())

    def world_to_index(self, points: np.ndarray) -> np.ndarray:
        """Map world coordinates to continuous voxel indices."""
        pts = np.asarray(points, dtype=np.float64)
        return (pts + self._half_size) / self._voxel

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample(self, points: np.ndarray) -> np.ndarray:
        """Trilinear interpolation at ``(N, 3)`` world points.

        Points outside the bounding box return 0 (vacuum), which is how the
        ray caster composites empty space without branching.
        """
        idx = self.world_to_index(points)
        nx, ny, nz = self.data.shape
        # tolerate float rounding at the faces: a point computed as lying on
        # the bounding box (e.g. a ray's exact exit t) may land 1 ulp past
        # it, and must sample the boundary plane, not the vacuum sentinel
        eps = 1e-6
        inside = (
            (idx[:, 0] >= -eps) & (idx[:, 0] <= nx - 1 + eps)
            & (idx[:, 1] >= -eps) & (idx[:, 1] <= ny - 1 + eps)
            & (idx[:, 2] >= -eps) & (idx[:, 2] <= nz - 1 + eps)
        )
        out = np.zeros(len(idx), dtype=np.float32)
        if not inside.any():
            return out
        p = np.clip(
            idx[inside], 0.0, np.array([nx - 1, ny - 1, nz - 1], dtype=np.float64)
        )
        i0 = np.floor(p).astype(np.intp)
        i0[:, 0] = np.clip(i0[:, 0], 0, nx - 2)
        i0[:, 1] = np.clip(i0[:, 1], 0, ny - 2)
        i0[:, 2] = np.clip(i0[:, 2], 0, nz - 2)
        f = (p - i0).astype(np.float32)
        x0, y0, z0 = i0[:, 0], i0[:, 1], i0[:, 2]
        d = self.data
        c000 = d[x0, y0, z0]
        c100 = d[x0 + 1, y0, z0]
        c010 = d[x0, y0 + 1, z0]
        c110 = d[x0 + 1, y0 + 1, z0]
        c001 = d[x0, y0, z0 + 1]
        c101 = d[x0 + 1, y0, z0 + 1]
        c011 = d[x0, y0 + 1, z0 + 1]
        c111 = d[x0 + 1, y0 + 1, z0 + 1]
        fx, fy, fz = f[:, 0], f[:, 1], f[:, 2]
        c00 = c000 * (1 - fx) + c100 * fx
        c10 = c010 * (1 - fx) + c110 * fx
        c01 = c001 * (1 - fx) + c101 * fx
        c11 = c011 * (1 - fx) + c111 * fx
        c0 = c00 * (1 - fy) + c10 * fy
        c1 = c01 * (1 - fy) + c11 * fy
        out[inside] = c0 * (1 - fz) + c1 * fz
        return out

    def gradient(self, points: np.ndarray, h: Optional[float] = None) -> np.ndarray:
        """Central-difference gradient of the field at ``(N, 3)`` points.

        Used for shading normals.  ``h`` defaults to half a voxel.
        """
        pts = np.asarray(points, dtype=np.float64)
        if h is None:
            h = self._voxel * 0.5
        grad = np.empty((len(pts), 3), dtype=np.float32)
        for axis in range(3):
            dp = np.zeros(3)
            dp[axis] = h
            grad[:, axis] = (self.sample(pts + dp) - self.sample(pts - dp)) / (
                2.0 * h
            )
        return grad

    # ------------------------------------------------------------------
    # ray intersection
    # ------------------------------------------------------------------
    def intersect_rays(
        self, origins: np.ndarray, directions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Slab-method intersection of rays with the bounding box.

        Returns ``(t_near, t_far)`` arrays; rays that miss have
        ``t_near > t_far``.  Directions need not be normalized.
        """
        o = np.asarray(origins, dtype=np.float64)
        d = np.asarray(directions, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            inv = 1.0 / d
            t1 = (self.world_min[None, :] - o) * inv
            t2 = (self.world_max[None, :] - o) * inv
        tmin = np.minimum(t1, t2)
        tmax = np.maximum(t1, t2)
        # axes with zero direction: ray parallel to slab — inside iff origin
        # within bounds, else miss
        par = d == 0.0
        if par.any():
            inside = (o >= self.world_min) & (o <= self.world_max)
            tmin = np.where(par & inside, -np.inf, tmin)
            tmax = np.where(par & inside, np.inf, tmax)
            tmin = np.where(par & ~inside, np.inf, tmin)
            tmax = np.where(par & ~inside, -np.inf, tmax)
        t_near = np.maximum(tmin.max(axis=1), 0.0)
        t_far = tmax.min(axis=1)
        return t_near, t_far

    def normalized(self) -> VolumeGrid:
        """A copy with samples linearly rescaled to [0, 1]."""
        lo, hi = self.value_range
        span = hi - lo
        if span == 0:
            data = np.zeros_like(self.data)
        else:
            data = (self.data - lo) / span
        return VolumeGrid(data=data, extent=self.extent, name=self.name)

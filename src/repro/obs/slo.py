"""SLO engine: error budgets and multi-window burn rates over sim time.

The fleet's interactivity promise is availability-shaped: "at least
``objective`` of demand misses complete under ``threshold_s``".  The
complement of the objective is the **error budget**, and the operative
question is not "is the budget gone?" but "how fast is it burning?" —
the multi-window, multi-burn-rate pattern from the SRE literature:
an alert fires only when *both* a long window (sustained problem, not a
blip) and a short window (still happening now, not an old scar) burn
budget faster than the window's ``factor``.

Everything here runs over **simulated** time: events are
``(completion_time, latency)`` pairs from
:func:`repro.obs.health.miss_events`, windows are simulated-second
spans anchored at the evaluation horizon, and the whole evaluation is a
pure deterministic function of its inputs — so SLO verdicts are part of
the reproducible artifact surface, not a monitoring side-channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BurnWindow",
    "SLOTarget",
    "SLOReport",
    "WindowVerdict",
    "DEFAULT_WINDOWS",
    "evaluate_slo",
]


@dataclass(frozen=True)
class SLOTarget:
    """One service-level objective over demand-miss latency."""

    name: str = "demand-miss-interactivity"
    #: a miss is "good" when its latency is strictly under this bound
    threshold_s: float = 0.25
    #: required good fraction; the error budget is ``1 - objective``
    objective: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.threshold_s <= 0:
            raise ValueError("threshold_s must be positive")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


@dataclass(frozen=True)
class BurnWindow:
    """A (long, short) window pair with its firing burn-rate factor."""

    long_s: float
    short_s: float
    factor: float

    def __post_init__(self) -> None:
        if not 0 < self.short_s <= self.long_s:
            raise ValueError("need 0 < short_s <= long_s")
        if self.factor <= 0:
            raise ValueError("factor must be positive")


#: the classic page/ticket ladder, rescaled to session-sized sim horizons:
#: a fast burn caught within ~a minute, a slow burn over several minutes
DEFAULT_WINDOWS = (
    BurnWindow(long_s=60.0, short_s=5.0, factor=14.4),
    BurnWindow(long_s=360.0, short_s=30.0, factor=6.0),
)


@dataclass
class WindowVerdict:
    """One burn-window evaluation."""

    long_s: float
    short_s: float
    factor: float
    long_burn: float
    short_burn: float
    long_events: int
    short_events: int
    firing: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "long_s": self.long_s,
            "short_s": self.short_s,
            "factor": self.factor,
            "long_burn": round(self.long_burn, 4),
            "short_burn": round(self.short_burn, 4),
            "long_events": self.long_events,
            "short_events": self.short_events,
            "firing": self.firing,
        }


@dataclass
class SLOReport:
    """The full SLO evaluation for one target."""

    target: SLOTarget
    horizon: float
    events: int
    bad_events: int
    good_fraction: float
    #: fraction of the whole-run error budget consumed (can exceed 1.0)
    budget_consumed: float
    windows: List[WindowVerdict] = field(default_factory=list)

    @property
    def breached(self) -> bool:
        """True when any window pair fires (sustained + current burn)."""
        return any(w.firing for w in self.windows)

    @property
    def verdict(self) -> str:
        return "BREACH" if self.breached else "OK"

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.target.name,
            "threshold_s": self.target.threshold_s,
            "objective": self.target.objective,
            "error_budget": round(self.target.error_budget, 6),
            "horizon_s": round(self.horizon, 4),
            "events": self.events,
            "bad_events": self.bad_events,
            "good_fraction": round(self.good_fraction, 4),
            "budget_consumed": round(self.budget_consumed, 4),
            "verdict": self.verdict,
            "windows": [w.to_dict() for w in self.windows],
        }


def _burn_rate(
    events: Sequence[Tuple[float, float]],
    threshold_s: float,
    budget: float,
    start: float,
    end: float,
) -> Tuple[float, int]:
    """(burn rate, event count) over completions in ``(start, end]``.

    Burn rate is the window's bad fraction over the error budget: 1.0
    means "burning exactly at the sustainable rate"; an empty window
    burns nothing.
    """
    n = bad = 0
    for t, latency in events:
        if start < t <= end:
            n += 1
            if latency >= threshold_s:
                bad += 1
    if n == 0:
        return 0.0, 0
    return (bad / n) / budget, n


def evaluate_slo(
    events: Sequence[Tuple[float, float]],
    target: SLOTarget = SLOTarget(),
    windows: Sequence[BurnWindow] = DEFAULT_WINDOWS,
    horizon: Optional[float] = None,
) -> SLOReport:
    """Evaluate one SLO over ``(completion_time, latency)`` events.

    ``horizon`` anchors the window ends (default: the last event's
    completion time).  Windows longer than the horizon clamp to the run
    start — early in a run the long window *is* the whole run, which is
    the correct conservative reading.
    """
    evs = sorted(events)
    if horizon is None:
        horizon = evs[-1][0] if evs else 0.0
    n = len(evs)
    bad = sum(1 for _, latency in evs if latency >= target.threshold_s)
    good_fraction = (n - bad) / n if n else 1.0
    budget = target.error_budget
    budget_consumed = ((bad / n) / budget) if n else 0.0

    verdicts: List[WindowVerdict] = []
    for w in windows:
        long_burn, long_n = _burn_rate(
            evs, target.threshold_s, budget,
            max(0.0, horizon - w.long_s), horizon,
        )
        short_burn, short_n = _burn_rate(
            evs, target.threshold_s, budget,
            max(0.0, horizon - w.short_s), horizon,
        )
        verdicts.append(WindowVerdict(
            long_s=w.long_s,
            short_s=w.short_s,
            factor=w.factor,
            long_burn=long_burn,
            short_burn=short_burn,
            long_events=long_n,
            short_events=short_n,
            firing=(long_burn >= w.factor and short_burn >= w.factor),
        ))
    return SLOReport(
        target=target,
        horizon=horizon,
        events=n,
        bad_events=bad,
        good_fraction=good_fraction,
        budget_consumed=budget_consumed,
        windows=verdicts,
    )

"""Named counters, gauges and log-scale histograms.

Session latencies span four decades — an agent-cache hit costs ~1e-4 s while
a cold WAN fetch approaches a second — so linear histogram buckets are
useless.  :class:`LogHistogram` uses fixed-ratio buckets (each bucket's upper
edge is ``growth`` times the previous), giving constant *relative* resolution
across the whole range, and derives p50/p95/p99 from the bucket counts.

The registry is intentionally tiny: metrics are named with a flat string
(dots as conventional separators, e.g. ``"link.wan.utilization"``) and
created on first touch, so instrumentation sites never need set-up code.

Two fleet-scale additions ride on that simplicity:

* **namespaces** — a registry constructed with ``namespace="shard3"``
  transparently prefixes every metric name at the factory methods
  (``counter``/``gauge``/``histogram``), so shard workers and multi-client
  rigs get collision-free series without any caller-side naming
  conventions;
* **mergeable state** — :meth:`MetricsRegistry.export_state` produces a
  plain-data (picklable, JSON-able) dump with *full* histogram bucket
  state, and :meth:`MetricsRegistry.merge_state` folds such a dump into a
  live registry.  Histogram merge is **exact**: quantiles depend only on
  integer bucket counts, the under/overflow tallies, the total and the
  observed extrema, all of which combine losslessly, so merging per-shard
  histograms is bit-equal to having pooled every sample into one
  histogram (``tests/obs/test_fleet.py`` proves this property).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TypedDict, cast

__all__ = [
    "Counter",
    "Gauge",
    "GaugeRecord",
    "HistogramRecord",
    "LogHistogram",
    "MetricsRegistry",
    "MetricsSnapshot",
]


class GaugeRecord(TypedDict):
    """JSON shape of one gauge in a registry snapshot."""

    value: float
    min: Optional[float]
    max: Optional[float]
    samples: int


class HistogramRecord(TypedDict):
    """JSON shape of one histogram in a registry snapshot."""

    count: int
    mean: float
    min: Optional[float]
    max: Optional[float]
    p50: float
    p95: float
    p99: float


class MetricsSnapshot(TypedDict):
    """JSON shape of ``MetricsRegistry.snapshot()``."""

    counters: Dict[str, float]
    gauges: Dict[str, GaugeRecord]
    histograms: Dict[str, HistogramRecord]


@dataclass
class Counter:
    """Monotonically increasing count (events, bytes, cancellations...)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins sampled value, with observed min/max retained."""

    name: str
    value: float = 0.0
    min_seen: float = math.inf
    max_seen: float = -math.inf
    samples: int = 0

    def set(self, value: float) -> None:
        self.value = value
        self.samples += 1
        if value < self.min_seen:
            self.min_seen = value
        if value > self.max_seen:
            self.max_seen = value


class LogHistogram:
    """Histogram with fixed-ratio (geometric) bucket edges.

    Buckets cover ``[lo, hi)`` with edges ``lo * growth**k``; values below
    ``lo`` land in an underflow bucket, values at or above ``hi`` in an
    overflow bucket.  The default range covers the session's four latency
    decades (1e-4 s .. 1 s) at 10 buckets per decade (growth ≈ 1.26, i.e.
    every estimate is within ±12% of the true quantile).
    """

    def __init__(self, name: str, lo: float = 1e-4, hi: float = 1.0,
                 buckets_per_decade: int = 10) -> None:
        if lo <= 0 or hi <= lo:
            raise ValueError("need 0 < lo < hi")
        if buckets_per_decade < 1:
            raise ValueError("need at least one bucket per decade")
        self.name = name
        self.lo = lo
        self.hi = hi
        self.buckets_per_decade = buckets_per_decade
        self.growth = 10.0 ** (1.0 / buckets_per_decade)
        n = int(math.ceil(
            math.log(hi / lo) / math.log(self.growth) - 1e-9))
        # edges[i] is the upper bound of bucket i (excluding under/overflow)
        self.edges: List[float] = [lo * self.growth ** (k + 1)
                                   for k in range(n)]
        self.counts: List[int] = [0] * n
        self.underflow = 0
        self.overflow = 0
        self.total = 0
        self.sum = 0.0
        self.min_seen = math.inf
        self.max_seen = -math.inf
        self._log_growth = math.log(self.growth)

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError("latencies are non-negative")
        self.total += 1
        self.sum += value
        if value < self.min_seen:
            self.min_seen = value
        if value > self.max_seen:
            self.max_seen = value
        if value < self.lo:
            self.underflow += 1
            return
        idx = int(math.log(value / self.lo) / self._log_growth)
        if idx >= len(self.counts):
            self.overflow += 1
        else:
            self.counts[idx] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket counts (geometric midpoint).

        Underflow resolves to ``lo``; overflow to the observed max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        seen = self.underflow
        if rank <= seen:
            return min(self.lo, self.max_seen)
        lower = self.lo
        for upper, count in zip(self.edges, self.counts):
            seen += count
            if rank <= seen and count:
                return math.sqrt(lower * upper)
            lower = upper
        return self.max_seen

    def percentiles(self) -> Dict[str, float]:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    # ------------------------------------------------------------------
    # fleet merge + serialization
    # ------------------------------------------------------------------
    def compatible_with(self, other: "LogHistogram") -> bool:
        """True when both histograms share one bucket layout."""
        return (self.lo == other.lo and self.hi == other.hi
                and self.buckets_per_decade == other.buckets_per_decade)

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other``'s samples into this histogram, exactly.

        Counts, the under/overflow tallies and the total are integers and
        simply add; ``min_seen``/``max_seen`` combine by min/max.  Every
        input :meth:`quantile` reads — counts, underflow, total,
        ``max_seen``, the bucket edges — is therefore *identical* to the
        state a single histogram fed the pooled sample stream would hold,
        so merged quantiles are bit-equal to pooled quantiles.  Only
        ``sum`` (hence ``mean``) may differ in the last ulp, because float
        addition is not associative.
        """
        if not self.compatible_with(other):
            raise ValueError(
                f"cannot merge {other.name!r} into {self.name!r}: bucket "
                f"layouts differ ({other.lo}, {other.hi}, "
                f"{other.buckets_per_decade}) vs ({self.lo}, {self.hi}, "
                f"{self.buckets_per_decade})"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.total += other.total
        self.sum += other.sum
        if other.min_seen < self.min_seen:
            self.min_seen = other.min_seen
        if other.max_seen > self.max_seen:
            self.max_seen = other.max_seen
        return self

    def to_state(self) -> Dict[str, object]:
        """Full-fidelity plain-data dump (picklable / JSON-able)."""
        return {
            "name": self.name,
            "lo": self.lo,
            "hi": self.hi,
            "buckets_per_decade": self.buckets_per_decade,
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
            "total": self.total,
            "sum": self.sum,
            # infinities are not JSON; sentinel None for the empty case
            "min_seen": None if self.total == 0 else self.min_seen,
            "max_seen": None if self.total == 0 else self.max_seen,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "LogHistogram":
        """Rebuild a histogram from :meth:`to_state` output, losslessly."""
        h = cls(
            str(state["name"]),
            lo=float(state["lo"]),  # type: ignore[arg-type]
            hi=float(state["hi"]),  # type: ignore[arg-type]
            buckets_per_decade=int(state["buckets_per_decade"]),  # type: ignore[call-overload]
        )
        counts = list(state["counts"])  # type: ignore[call-overload]
        if len(counts) != len(h.counts):
            raise ValueError(
                f"histogram state for {h.name!r} has {len(counts)} buckets, "
                f"layout expects {len(h.counts)}"
            )
        h.counts = [int(c) for c in counts]
        h.underflow = int(state["underflow"])  # type: ignore[call-overload]
        h.overflow = int(state["overflow"])  # type: ignore[call-overload]
        h.total = int(state["total"])  # type: ignore[call-overload]
        h.sum = float(state["sum"])  # type: ignore[arg-type]
        if state.get("min_seen") is not None:
            h.min_seen = float(state["min_seen"])  # type: ignore[arg-type]
        if state.get("max_seen") is not None:
            h.max_seen = float(state["max_seen"])  # type: ignore[arg-type]
        return h

    def nonzero_buckets(self) -> List[Tuple[float, float, int]]:
        """(lower, upper, count) for populated buckets — compact export."""
        out: List[Tuple[float, float, int]] = []
        lower = self.lo
        for upper, count in zip(self.edges, self.counts):
            if count:
                out.append((lower, upper, count))
            lower = upper
        return out


class MetricsRegistry:
    """Flat namespace of metrics, created on first use.

    ``namespace`` (e.g. ``"shard3"``) is prefixed onto every metric name
    at the factory methods, so instrumentation sites keep using bare
    series names (``"depot.lan-depot-0.bytes_served"``) while shard
    workers and multi-client rigs get globally unique, collision-free
    series — the explicit replacement for caller-side prefix conventions.
    """

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, LogHistogram] = {}

    def qualify(self, name: str) -> str:
        """The fully-qualified series name this registry stores under."""
        return f"{self.namespace}.{name}" if self.namespace else name

    def counter(self, name: str) -> Counter:
        return self._counter_full(self.qualify(name))

    def _counter_full(self, full: str) -> Counter:
        c = self._counters.get(full)
        if c is None:
            c = self._counters[full] = Counter(full)
        return c

    def gauge(self, name: str) -> Gauge:
        return self._gauge_full(self.qualify(name))

    def _gauge_full(self, full: str) -> Gauge:
        g = self._gauges.get(full)
        if g is None:
            g = self._gauges[full] = Gauge(full)
        return g

    def histogram(self, name: str, lo: float = 1e-4, hi: float = 1.0,
                  buckets_per_decade: int = 10) -> LogHistogram:
        full = self.qualify(name)
        h = self._histograms.get(full)
        if h is None:
            h = self._histograms[full] = LogHistogram(
                full, lo=lo, hi=hi, buckets_per_decade=buckets_per_decade)
        return h

    # ------------------------------------------------------------------
    @property
    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, Gauge]:
        return dict(self._gauges)

    @property
    def histograms(self) -> Dict[str, LogHistogram]:
        return dict(self._histograms)

    def snapshot(self) -> MetricsSnapshot:
        """JSON-ready dump of every metric (summary(), exporters)."""
        out: MetricsSnapshot = {"counters": {}, "gauges": {},
                                "histograms": {}}
        for name, c in sorted(self._counters.items()):
            out["counters"][name] = c.value
        for name, g in sorted(self._gauges.items()):
            out["gauges"][name] = {
                "value": g.value,
                "min": None if g.samples == 0 else g.min_seen,
                "max": None if g.samples == 0 else g.max_seen,
                "samples": g.samples,
            }
        for name, h in sorted(self._histograms.items()):
            pct = h.percentiles()
            out["histograms"][name] = {
                "count": h.total,
                "mean": h.mean,
                "min": None if h.total == 0 else h.min_seen,
                "max": None if h.total == 0 else h.max_seen,
                "p50": pct["p50"],
                "p95": pct["p95"],
                "p99": pct["p99"],
            }
        return out

    # ------------------------------------------------------------------
    # cross-process export / merge (the fleet telemetry plane)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Full-fidelity plain-data dump of every metric.

        Unlike :meth:`snapshot` (a lossy summary for humans and report
        tables), this keeps complete histogram bucket state so a parent
        process can :meth:`merge_state` shard dumps and recover quantiles
        bit-equal to pooled recording.  Names are stored fully qualified.
        """
        return {
            "namespace": self.namespace,
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: {
                    "value": g.value,
                    "min_seen": None if g.samples == 0 else g.min_seen,
                    "max_seen": None if g.samples == 0 else g.max_seen,
                    "samples": g.samples,
                }
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.to_state()
                for name, h in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`export_state` output."""
        reg = cls(namespace=str(state.get("namespace", "")))
        reg.merge_state(state)
        return reg

    def merge_state(self, state: Dict[str, object]) -> "MetricsRegistry":
        """Fold an :meth:`export_state` dump into this registry.

        Metric names in the dump are already fully qualified, so they are
        *not* re-prefixed by this registry's namespace; counters add,
        gauges combine min/max/samples (last write wins on ``value``, in
        merge-call order), histograms merge exactly.
        """
        for name, value in sorted(
            cast(Dict[str, float], state.get("counters", {})).items()
        ):
            self._counter_full(name).inc(float(value))
        for name, rec in sorted(
            cast(Dict[str, Dict[str, object]],
                 state.get("gauges", {})).items()
        ):
            g = self._gauge_full(name)
            samples = int(rec.get("samples", 0))  # type: ignore[call-overload]
            if samples == 0:
                continue
            g.value = float(rec["value"])  # type: ignore[arg-type]
            g.samples += samples
            if rec.get("min_seen") is not None:
                g.min_seen = min(g.min_seen, float(rec["min_seen"]))  # type: ignore[arg-type]
            if rec.get("max_seen") is not None:
                g.max_seen = max(g.max_seen, float(rec["max_seen"]))  # type: ignore[arg-type]
        for name, h_state in sorted(
            cast(Dict[str, Dict[str, object]],
                 state.get("histograms", {})).items()
        ):
            incoming = LogHistogram.from_state(h_state)
            existing = self._histograms.get(name)
            if existing is None:
                self._histograms[name] = incoming
            else:
                existing.merge(incoming)
        return self

"""Named counters, gauges and log-scale histograms.

Session latencies span four decades — an agent-cache hit costs ~1e-4 s while
a cold WAN fetch approaches a second — so linear histogram buckets are
useless.  :class:`LogHistogram` uses fixed-ratio buckets (each bucket's upper
edge is ``growth`` times the previous), giving constant *relative* resolution
across the whole range, and derives p50/p95/p99 from the bucket counts.

The registry is intentionally tiny: metrics are named with a flat string
(dots as conventional separators, e.g. ``"link.wan.utilization"``) and
created on first touch, so instrumentation sites never need set-up code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TypedDict

__all__ = [
    "Counter",
    "Gauge",
    "GaugeRecord",
    "HistogramRecord",
    "LogHistogram",
    "MetricsRegistry",
    "MetricsSnapshot",
]


class GaugeRecord(TypedDict):
    """JSON shape of one gauge in a registry snapshot."""

    value: float
    min: Optional[float]
    max: Optional[float]
    samples: int


class HistogramRecord(TypedDict):
    """JSON shape of one histogram in a registry snapshot."""

    count: int
    mean: float
    min: Optional[float]
    max: Optional[float]
    p50: float
    p95: float
    p99: float


class MetricsSnapshot(TypedDict):
    """JSON shape of ``MetricsRegistry.snapshot()``."""

    counters: Dict[str, float]
    gauges: Dict[str, GaugeRecord]
    histograms: Dict[str, HistogramRecord]


@dataclass
class Counter:
    """Monotonically increasing count (events, bytes, cancellations...)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins sampled value, with observed min/max retained."""

    name: str
    value: float = 0.0
    min_seen: float = math.inf
    max_seen: float = -math.inf
    samples: int = 0

    def set(self, value: float) -> None:
        self.value = value
        self.samples += 1
        if value < self.min_seen:
            self.min_seen = value
        if value > self.max_seen:
            self.max_seen = value


class LogHistogram:
    """Histogram with fixed-ratio (geometric) bucket edges.

    Buckets cover ``[lo, hi)`` with edges ``lo * growth**k``; values below
    ``lo`` land in an underflow bucket, values at or above ``hi`` in an
    overflow bucket.  The default range covers the session's four latency
    decades (1e-4 s .. 1 s) at 10 buckets per decade (growth ≈ 1.26, i.e.
    every estimate is within ±12% of the true quantile).
    """

    def __init__(self, name: str, lo: float = 1e-4, hi: float = 1.0,
                 buckets_per_decade: int = 10) -> None:
        if lo <= 0 or hi <= lo:
            raise ValueError("need 0 < lo < hi")
        if buckets_per_decade < 1:
            raise ValueError("need at least one bucket per decade")
        self.name = name
        self.lo = lo
        self.hi = hi
        self.growth = 10.0 ** (1.0 / buckets_per_decade)
        n = int(math.ceil(
            math.log(hi / lo) / math.log(self.growth) - 1e-9))
        # edges[i] is the upper bound of bucket i (excluding under/overflow)
        self.edges: List[float] = [lo * self.growth ** (k + 1)
                                   for k in range(n)]
        self.counts: List[int] = [0] * n
        self.underflow = 0
        self.overflow = 0
        self.total = 0
        self.sum = 0.0
        self.min_seen = math.inf
        self.max_seen = -math.inf
        self._log_growth = math.log(self.growth)

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError("latencies are non-negative")
        self.total += 1
        self.sum += value
        if value < self.min_seen:
            self.min_seen = value
        if value > self.max_seen:
            self.max_seen = value
        if value < self.lo:
            self.underflow += 1
            return
        idx = int(math.log(value / self.lo) / self._log_growth)
        if idx >= len(self.counts):
            self.overflow += 1
        else:
            self.counts[idx] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket counts (geometric midpoint).

        Underflow resolves to ``lo``; overflow to the observed max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        seen = self.underflow
        if rank <= seen:
            return min(self.lo, self.max_seen)
        lower = self.lo
        for upper, count in zip(self.edges, self.counts):
            seen += count
            if rank <= seen and count:
                return math.sqrt(lower * upper)
            lower = upper
        return self.max_seen

    def percentiles(self) -> Dict[str, float]:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def nonzero_buckets(self) -> List[Tuple[float, float, int]]:
        """(lower, upper, count) for populated buckets — compact export."""
        out: List[Tuple[float, float, int]] = []
        lower = self.lo
        for upper, count in zip(self.edges, self.counts):
            if count:
                out.append((lower, upper, count))
            lower = upper
        return out


class MetricsRegistry:
    """Flat namespace of metrics, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, LogHistogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, lo: float = 1e-4, hi: float = 1.0,
                  buckets_per_decade: int = 10) -> LogHistogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = LogHistogram(
                name, lo=lo, hi=hi, buckets_per_decade=buckets_per_decade)
        return h

    # ------------------------------------------------------------------
    @property
    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, Gauge]:
        return dict(self._gauges)

    @property
    def histograms(self) -> Dict[str, LogHistogram]:
        return dict(self._histograms)

    def snapshot(self) -> MetricsSnapshot:
        """JSON-ready dump of every metric (summary(), exporters)."""
        out: MetricsSnapshot = {"counters": {}, "gauges": {},
                                "histograms": {}}
        for name, c in sorted(self._counters.items()):
            out["counters"][name] = c.value
        for name, g in sorted(self._gauges.items()):
            out["gauges"][name] = {
                "value": g.value,
                "min": None if g.samples == 0 else g.min_seen,
                "max": None if g.samples == 0 else g.max_seen,
                "samples": g.samples,
            }
        for name, h in sorted(self._histograms.items()):
            pct = h.percentiles()
            out["histograms"][name] = {
                "count": h.total,
                "mean": h.mean,
                "min": None if h.total == 0 else h.min_seen,
                "max": None if h.total == 0 else h.max_seen,
                "p50": pct["p50"],
                "p95": pct["p95"],
                "p99": pct["p99"],
            }
        return out

"""Depot-fleet health: load skew, queue depth, QGR and tail latency.

The paper's depots are best-effort shared infrastructure, so fleet health
is a *distributional* question: not "how fast was the mean access" but
"which depot soaked up the bytes, how deep did its queue get, and what
fraction of users stayed under the interactivity threshold".  This module
turns the telemetry the fleet plane collects (per-depot gauges sampled by
:class:`~repro.obs.samplers.DepotSampler`, per-access records, merged
latency histograms) into those answers:

* :func:`gini` / :func:`load_skew` — max/mean and Gini-coefficient skew
  over bytes served per depot (0 = perfectly balanced fleet);
* :func:`depot_stats_from_registry` — per-depot bytes-served and
  queue-depth figures recovered from sampled gauges, across any number of
  shard namespaces;
* :func:`fleet_qgr` — the steady-state fraction of accesses under the
  interactivity threshold (the paper's Quality Guaranteed Rate
  criterion), pooled over every client in the fleet;
* :func:`demand_miss_histogram` — the demand-miss latency distribution as
  a mergeable :class:`~repro.obs.metrics.LogHistogram` (the SLO engine's
  p99 source);
* :func:`fleet_health` — one :class:`FleetHealth` summary combining all
  of the above for reports and BENCH artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .metrics import LogHistogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    # runtime import would close the obs -> streaming -> lon -> obs cycle
    # (streaming.metrics imports lon.scheduler, which imports obs.tracer)
    from ..streaming.metrics import AccessRecord

__all__ = [
    "DepotStat",
    "FleetHealth",
    "demand_miss_histogram",
    "depot_stats_from_registry",
    "fleet_health",
    "fleet_qgr",
    "gini",
    "load_skew",
    "miss_events",
]

#: interactivity threshold (seconds) behind the QGR criterion — matches
#: the sweep engine's ``qgr_sweep``
QGR_THRESHOLD_S = 0.25

#: accesses with index <= warmup are excluded from steady-state figures
QGR_WARMUP = 5

#: sources that missed every local tier (the demand-miss pool, matching
#: ``repro.experiments.runners.demand_miss_latency``).  These are the
#: *values* of :class:`repro.streaming.metrics.AccessSource` — a str enum,
#: so ``record.source in MISS_SOURCES`` compares by string — spelled out
#: here to keep this module import-cycle-free (a test pins the mapping).
MISS_SOURCES = ("lan-depot", "wan", "server")


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative sample (0 balanced, ->1 skewed).

    Computed from the sorted-sample identity
    ``G = (2 * sum(i * x_i) / (n * sum(x))) - (n + 1) / n`` with 1-based
    ranks over ascending values; 0.0 for empty or all-zero input.
    """
    xs = sorted(float(v) for v in values)
    if any(x < 0 for x in xs):
        raise ValueError("gini is defined for non-negative values")
    n = len(xs)
    total = sum(xs)
    if n == 0 or total == 0.0:
        return 0.0
    weighted = sum(rank * x for rank, x in enumerate(xs, start=1))
    return (2.0 * weighted / (n * total)) - (n + 1.0) / n


def load_skew(bytes_served: Mapping[str, float]) -> Dict[str, float]:
    """Skew figures over per-depot bytes served.

    ``max_over_mean`` is 1.0 for a perfectly balanced fleet and grows as
    one depot becomes the hotspot; ``gini`` summarizes the whole
    distribution.
    """
    values = [float(v) for v in bytes_served.values()]
    n = len(values)
    total = sum(values)
    mean = total / n if n else 0.0
    return {
        "depots": float(n),
        "total_bytes": total,
        "max_over_mean": (max(values) / mean) if mean > 0 else 1.0,
        "gini": gini(values),
    }


@dataclass
class DepotStat:
    """One depot's sampled service figures (namespace-qualified name)."""

    name: str
    bytes_served: float = 0.0
    queue_depth_peak: float = 0.0
    queue_depth_last: float = 0.0


def depot_stats_from_registry(
    registry: MetricsRegistry,
) -> List[DepotStat]:
    """Per-depot figures recovered from ``depot.<name>.*`` gauges.

    Works on a merged fleet registry: shard namespaces are part of the
    gauge names (``shard3.depot.lan-depot-0.bytes_served``), so depots
    from different shards stay distinct.  ``bytes_served`` is the gauge's
    final value (the sampler emits a cumulative counter through a gauge);
    queue depth keeps both the observed peak and the last sample.
    """
    stats: Dict[str, DepotStat] = {}

    def stat(depot: str) -> DepotStat:
        if depot not in stats:
            stats[depot] = DepotStat(name=depot)
        return stats[depot]

    for name, g in sorted(registry.gauges.items()):
        if ".bytes_served" in name and ".depot." in f".{name}":
            depot = name[: -len(".bytes_served")]
            stat(depot).bytes_served = g.value
        elif ".queue_depth" in name and ".depot." in f".{name}":
            depot = name[: -len(".queue_depth")]
            s = stat(depot)
            s.queue_depth_peak = (g.max_seen if g.samples else 0.0)
            s.queue_depth_last = g.value
    return [stats[k] for k in sorted(stats)]


def _steady(
    accesses: Iterable[AccessRecord], warmup: int
) -> List[AccessRecord]:
    return [a for a in accesses if a.index > warmup]


def fleet_qgr(
    accesses: Iterable[AccessRecord],
    threshold: float = QGR_THRESHOLD_S,
    warmup: int = QGR_WARMUP,
) -> float:
    """Steady-state fraction of accesses under the threshold, fleet-wide.

    Pools every client's accesses (the fleet is the population), skips
    each client's first ``warmup`` accesses as the initial phase, and
    applies the same ``latency < threshold`` criterion as the per-session
    QGR sweep, so single-rig and fleet numbers are directly comparable.
    """
    pool = _steady(accesses, warmup)
    if not pool:
        return 0.0
    return sum(1 for a in pool if a.total_latency < threshold) / len(pool)


def demand_miss_histogram(
    accesses: Iterable[AccessRecord],
    registry: Optional[MetricsRegistry] = None,
    name: str = "fleet.demand_miss_latency",
) -> LogHistogram:
    """Demand-miss latency distribution as a mergeable log histogram.

    When ``registry`` is given the histogram lives there (namespace
    applied); otherwise a standalone histogram is returned.  The miss
    pool matches ``demand_miss_latency``: every access that was not
    served by the client console or the agent cache.
    """
    h = (registry.histogram(name) if registry is not None
         else LogHistogram(name))
    for a in accesses:
        if a.source in MISS_SOURCES:
            h.observe(a.total_latency)
    return h


@dataclass
class FleetHealth:
    """One fleet's health summary (reports + BENCH artifacts read this)."""

    n_clients: int
    accesses: int
    qgr: float
    misses: int
    demand_miss_p50_s: float
    demand_miss_p99_s: float
    load_skew_max_over_mean: float
    load_skew_gini: float
    depots: List[DepotStat] = field(default_factory=list)
    #: full state of the merged demand-miss histogram (mergeable further)
    miss_histogram: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (depot list included, histogram elided)."""
        return {
            "n_clients": self.n_clients,
            "accesses": self.accesses,
            "qgr": round(self.qgr, 4),
            "misses": self.misses,
            "demand_miss_p50_s": round(self.demand_miss_p50_s, 6),
            "demand_miss_p99_s": round(self.demand_miss_p99_s, 6),
            "load_skew_max_over_mean": round(
                self.load_skew_max_over_mean, 4
            ),
            "load_skew_gini": round(self.load_skew_gini, 4),
            "depots": [
                {
                    "name": d.name,
                    "bytes_served": d.bytes_served,
                    "queue_depth_peak": d.queue_depth_peak,
                }
                for d in self.depots
            ],
        }


def fleet_health(
    per_client: Sequence[Sequence[AccessRecord]],
    registry: MetricsRegistry,
    miss_histogram: Optional[LogHistogram] = None,
    threshold: float = QGR_THRESHOLD_S,
    warmup: int = QGR_WARMUP,
) -> FleetHealth:
    """Assemble the fleet health summary from merged telemetry.

    ``per_client`` is every client's access records (global order);
    ``registry`` is the merged fleet registry (depot gauges across all
    shard namespaces).  ``miss_histogram`` defaults to a histogram built
    from the access records; pass the exact merge of per-shard histograms
    to assert merge/pooled bit-equality upstream.
    """
    accesses = [a for client in per_client for a in client]
    if miss_histogram is None:
        miss_histogram = demand_miss_histogram(accesses)
    depots = depot_stats_from_registry(registry)
    skew = load_skew({d.name: d.bytes_served for d in depots})
    return FleetHealth(
        n_clients=len(per_client),
        accesses=len(accesses),
        qgr=fleet_qgr(accesses, threshold=threshold, warmup=warmup),
        misses=miss_histogram.total,
        demand_miss_p50_s=miss_histogram.quantile(0.50),
        demand_miss_p99_s=miss_histogram.quantile(0.99),
        load_skew_max_over_mean=skew["max_over_mean"],
        load_skew_gini=skew["gini"],
        depots=depots,
        miss_histogram=miss_histogram.to_state(),
    )


def miss_events(
    per_client: Sequence[Sequence[AccessRecord]],
) -> List[Tuple[float, float]]:
    """(completion_time, latency) for every demand miss, time-ordered.

    The SLO engine's input: completion time is ``request_time +
    total_latency`` in simulated seconds.
    """
    events = [
        (a.request_time + a.total_latency, a.total_latency)
        for client in per_client
        for a in client
        if a.source in MISS_SOURCES
    ]
    events.sort()
    return events

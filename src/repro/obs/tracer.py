"""Sim-time-aware hierarchical tracing (the NetLogger lineage).

The paper's headline results are *latency attributions*: Figures 9-12 break a
view-set access's wait into brokerage, cache lookup, WAN transfer and
decompression.  This module records exactly that as a tree of **spans** —
named intervals of simulated time carrying ``trace_id``/``span_id``/
``parent_id`` plus free-form key-value attributes — the same model Bethel et
al. used (via NetLogger) to make their WAN visualization pipeline debuggable.

Design constraints:

* **sim-time, not wall-clock** — timestamps come from the simulation clock,
  so a trace of a 40-second simulated session reads in simulated seconds no
  matter how fast the host ran it;
* **cheap when off** — a disabled :class:`Tracer` hands out one shared
  :data:`NOOP_SPAN` whose methods do nothing, so instrumented hot paths pay a
  single predictable method call (benchmarks keep tracing off; examples turn
  it on);
* **retroactive spans** — event-driven code often knows a stage's boundaries
  only at completion time; :meth:`Tracer.record` creates an already-closed
  span from explicit timestamps, which is how the client emits its exact
  per-access stage partition.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    TypedDict,
    Union,
    runtime_checkable,
)

__all__ = [
    "Span",
    "SpanDict",
    "SpanLike",
    "Tracer",
    "NoopSpan",
    "NOOP_SPAN",
    "NULL_TRACER",
]


class SpanDict(TypedDict):
    """The JSON shape of one exported span (``Span.to_dict``)."""

    name: str
    cat: str
    trace_id: int
    span_id: int
    parent_id: Optional[int]
    start: float
    end: float
    attrs: Dict[str, object]
    events: List[Dict[str, object]]


@runtime_checkable
class SpanLike(Protocol):
    """What instrumented code may assume about a span it was handed.

    Both :class:`Span` and :class:`NoopSpan` satisfy this, so hot paths can
    carry a ``SpanLike`` without caring whether tracing is on.
    """

    @property
    def trace_id(self) -> Optional[int]: ...

    @property
    def span_id(self) -> Optional[int]: ...

    def annotate(self, **attrs: object) -> SpanLike: ...

    def event(self, name: str, t: Optional[float] = None,
              **attrs: object) -> None: ...

    def finish(self, t: Optional[float] = None,
               **attrs: object) -> SpanLike: ...

    def child(self, name: str, t: Optional[float] = None,
              category: str = "", **attrs: object) -> SpanLike: ...


class Span:
    """One named interval of simulated time in a trace tree."""

    __slots__ = (
        "tracer", "name", "category", "trace_id", "span_id", "parent_id",
        "start", "end", "attrs", "events",
    )

    def __init__(
        self,
        tracer: Tracer,
        name: str,
        category: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        start: float,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.category = category
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, object] = {}
        self.events: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True once :meth:`finish` (or a closed record) set the end time."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def annotate(self, **attrs: object) -> Span:
        """Attach key-value attributes (later keys overwrite earlier)."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, t: Optional[float] = None,
              **attrs: object) -> None:
        """Record an instant event inside this span (promotion, pause...)."""
        ev: Dict[str, object] = {
            "name": name,
            "t": self.tracer.now if t is None else t,
        }
        if attrs:
            ev.update(attrs)
        self.events.append(ev)

    def finish(self, t: Optional[float] = None, **attrs: object) -> Span:
        """Close the span (idempotent; the first close wins)."""
        if attrs:
            self.attrs.update(attrs)
        if self.end is None:
            self.end = self.tracer.now if t is None else t
            if self.end < self.start:
                self.end = self.start
            if self.tracer._listeners:
                self.tracer._notify("span", self)
        return self

    def child(self, name: str, t: Optional[float] = None,
              category: str = "", **attrs: object) -> Span:
        """Open a child span under this one."""
        return self.tracer.begin(name, parent=self, t=t,
                                 category=category, **attrs)

    def to_dict(self) -> SpanDict:
        """JSON-ready representation (the exporters' input)."""
        return {
            "name": self.name,
            "cat": self.category,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "attrs": dict(self.attrs),
            "events": list(self.events),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, [{self.start:.6f}, {self.end}])")


class NoopSpan:
    """The disabled tracer's universal span: every method is a no-op."""

    __slots__ = ()

    name = ""
    category = ""
    trace_id = None
    span_id = None
    parent_id = None
    start = 0.0
    end = 0.0
    finished = True
    duration = 0.0
    attrs: Dict[str, object] = {}
    events: List[Dict[str, object]] = []

    def annotate(self, **attrs: object) -> NoopSpan:
        return self

    def event(self, name: str, t: Optional[float] = None,
              **attrs: object) -> None:
        return None

    def finish(self, t: Optional[float] = None,
               **attrs: object) -> NoopSpan:
        return self

    def child(self, name: str, t: Optional[float] = None,
              category: str = "", **attrs: object) -> NoopSpan:
        return self

    def to_dict(self) -> Dict[str, object]:
        return {}


#: shared do-nothing span handed out by disabled tracers.
NOOP_SPAN = NoopSpan()

AnySpan = Union[Span, NoopSpan]


class Tracer:
    """Factory and container for spans over one simulated run.

    Parameters
    ----------
    clock:
        Either an object with a ``now`` attribute (a
        :class:`~repro.lon.simtime.SimClock` or ``EventQueue``) or a
        zero-argument callable returning the current time.  ``None`` pins
        the clock at 0.0 (explicit timestamps still work).
    enabled:
        When False every factory method returns :data:`NOOP_SPAN` and
        nothing is recorded.
    """

    def __init__(self, clock: object = None, enabled: bool = True) -> None:
        self.enabled = enabled
        self._clock = clock
        self.spans: List[Span] = []
        self.counters: List[Dict[str, object]] = []
        self.instants: List[Dict[str, object]] = []
        self._next_span_id = 1
        self._next_trace_id = 1
        #: finish/instant/counter listeners (the flight recorder's hook);
        #: hot paths pay one truthiness check while the list stays empty
        self._listeners: List[Callable[[str, object], None]] = []

    # ------------------------------------------------------------------
    def add_listener(self, fn: Callable[[str, object], None]) -> None:
        """Subscribe to telemetry as it lands.

        ``fn(kind, payload)`` is called with ``("span", Span)`` when a span
        closes, ``("instant", dict)`` and ``("counter", dict)`` as those
        are recorded.  Listeners must not mutate the payload.
        """
        if fn not in self._listeners:
            self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[str, object], None]) -> None:
        """Unsubscribe (no-op when not subscribed)."""
        if fn in self._listeners:
            self._listeners.remove(fn)

    def _notify(self, kind: str, payload: object) -> None:
        for fn in self._listeners:
            fn(kind, payload)

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time according to the wired clock."""
        clock = self._clock
        if clock is None:
            return 0.0
        if callable(clock):
            return float(clock())
        return float(clock.now)

    # ------------------------------------------------------------------
    def begin(
        self,
        name: str,
        parent: Optional[SpanLike] = None,
        t: Optional[float] = None,
        category: str = "",
        **attrs: object,
    ) -> AnySpan:
        """Open a span now (or at ``t``); root when ``parent`` is None."""
        if not self.enabled:
            return NOOP_SPAN
        if parent is None or parent is NOOP_SPAN:
            trace_id = self._next_trace_id
            self._next_trace_id += 1
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            tracer=self,
            name=name,
            category=category,
            trace_id=trace_id,
            span_id=self._next_span_id,
            parent_id=parent_id,
            start=self.now if t is None else t,
        )
        self._next_span_id += 1
        if attrs:
            span.attrs.update(attrs)
        self.spans.append(span)
        return span

    def record(
        self,
        name: str,
        start: float,
        end: float,
        parent: Optional[SpanLike] = None,
        category: str = "",
        **attrs: object,
    ) -> AnySpan:
        """Create an already-closed span from explicit timestamps."""
        if not self.enabled:
            return NOOP_SPAN
        span = self.begin(name, parent=parent, t=start,
                          category=category, **attrs)
        span.finish(t=max(start, end))
        return span

    @contextmanager
    def span(
        self,
        name: str,
        parent: Optional[SpanLike] = None,
        category: str = "",
        **attrs: object,
    ) -> Iterator[AnySpan]:
        """Context manager for synchronous sections (closes on exit)."""
        s = self.begin(name, parent=parent, category=category, **attrs)
        try:
            yield s
        finally:
            s.finish()

    # ------------------------------------------------------------------
    def instant(self, name: str, t: Optional[float] = None,
                **attrs: object) -> None:
        """A global instant event (e.g. a prefetch decision)."""
        if not self.enabled:
            return
        ev: Dict[str, object] = {
            "name": name,
            "t": self.now if t is None else t,
        }
        if attrs:
            ev.update(attrs)
        self.instants.append(ev)
        if self._listeners:
            self._notify("instant", ev)

    def counter(self, name: str, value: float,
                t: Optional[float] = None) -> None:
        """One sample of a named time series (samplers feed these)."""
        if not self.enabled:
            return
        sample = {
            "name": name,
            "t": self.now if t is None else t,
            "value": value,
        }
        self.counters.append(sample)
        if self._listeners:
            self._notify("counter", sample)

    # ------------------------------------------------------------------
    def finish_open(self, t: Optional[float] = None) -> int:
        """Close every still-open span (end of run); returns how many."""
        n = 0
        for span in self.spans:
            if span.end is None:
                span.finish(t=t)
                span.attrs.setdefault("unfinished", True)
                n += 1
        return n

    def span_dicts(self) -> List[SpanDict]:
        """All spans as plain dicts (report/export input)."""
        return [s.to_dict() for s in self.spans]

    def roots(self) -> List[Span]:
        """Spans with no parent, in creation order."""
        return [s for s in self.spans if s.parent_id is None]


#: shared disabled tracer: instrument against this by default.
NULL_TRACER = Tracer(enabled=False)


def make_tracer(clock: object = None,
                enabled: bool = True) -> Tracer:
    """Convenience: a real tracer when enabled, the shared null otherwise."""
    return Tracer(clock, enabled=True) if enabled else NULL_TRACER


# re-exported for callers that only need the type for annotations
Clock = Callable[[], float]

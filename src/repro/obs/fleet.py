"""Cross-process fleet telemetry: export per-worker, stitch in the parent.

Shard workers (:mod:`repro.lon.shard`) run their rigs in separate
processes, so a fleet-scale question — "what was the p99 across 256
clients?", "which depot served a skewed share of the bytes?" — cannot be
answered by any single worker's :class:`~repro.obs.tracer.Tracer` or
:class:`~repro.obs.metrics.MetricsRegistry`.  This module makes workers
first-class telemetry *sources*:

* :func:`export_telemetry` — snapshot one rig's tracer + registry into a
  :class:`WorkerTelemetry`: plain picklable data (span dicts, counter and
  instant samples, full registry state) that crosses the process boundary
  with the shard result;
* :func:`stitch` — merge worker exports into one :class:`FleetTrace`:
  span/trace ids are re-based per worker so they stay unique, every span
  is annotated with its ``worker``, counter series keep the per-shard
  namespace their registry stamped at record time, and registries merge
  with **exact** histogram merge (bit-equal to pooled recording);
* :meth:`FleetTrace.write_chrome` — one merged Perfetto artifact for the
  whole fleet.

Per-client namespacing comes from the spans themselves: every access root
span carries a ``client`` attribute (the console node, globally unique
across shards), so the stitched timeline attributes every access to both
its worker and its client.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import IO, Dict, Iterable, List, Optional, Sequence, Union, cast

from .export import write_chrome_trace
from .metrics import MetricsRegistry
from .tracer import SpanDict, Tracer

__all__ = [
    "FleetTrace",
    "WorkerTelemetry",
    "export_telemetry",
    "merged_histogram_state",
    "stitch",
]


@dataclass
class WorkerTelemetry:
    """One worker's complete telemetry export (plain picklable data)."""

    #: stable worker label, e.g. ``"shard0"`` (doubles as the registry
    #: namespace the worker recorded under)
    worker: str
    spans: List[SpanDict] = field(default_factory=list)
    counters: List[Dict[str, object]] = field(default_factory=list)
    instants: List[Dict[str, object]] = field(default_factory=list)
    #: full-fidelity :meth:`MetricsRegistry.export_state` dump
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def max_span_id(self) -> int:
        return max((int(cast(int, s["span_id"])) for s in self.spans),
                   default=0)

    @property
    def max_trace_id(self) -> int:
        return max((int(cast(int, s["trace_id"])) for s in self.spans),
                   default=0)


def export_telemetry(
    worker: str,
    tracer: Optional[Tracer],
    registry: Optional[MetricsRegistry],
) -> WorkerTelemetry:
    """Snapshot a rig's live tracer/registry into picklable telemetry."""
    return WorkerTelemetry(
        worker=worker,
        spans=list(tracer.span_dicts()) if tracer is not None else [],
        counters=[dict(c) for c in tracer.counters]
        if tracer is not None else [],
        instants=[dict(i) for i in tracer.instants]
        if tracer is not None else [],
        metrics=registry.export_state() if registry is not None else {},
    )


@dataclass
class FleetTrace:
    """The stitched fleet timeline: one span/counter/metric space."""

    workers: List[str]
    spans: List[SpanDict]
    counters: List[Dict[str, object]]
    instants: List[Dict[str, object]]
    #: merged registry (exact histogram merge across workers)
    registry: MetricsRegistry

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    def spans_for_worker(self, worker: str) -> List[SpanDict]:
        """This worker's spans (post-stitch ids)."""
        return [s for s in self.spans
                if cast(Dict[str, object],
                        s.get("attrs") or {}).get("worker") == worker]

    def clients(self) -> List[str]:
        """Every client node that contributed an access root span."""
        out = []
        seen = set()
        for s in self.spans:
            attrs = cast(Dict[str, object], s.get("attrs") or {})
            client = attrs.get("client")
            if client is not None and client not in seen:
                seen.add(client)
                out.append(str(client))
        return out

    def write_chrome(
        self, path_or_file: Union[str, os.PathLike, IO[str]]
    ) -> int:
        """Write the merged Perfetto artifact; returns the event count."""
        return write_chrome_trace(
            self.spans, path_or_file,
            metrics_snapshot=cast(
                Dict[str, object],
                {
                    **self.registry.snapshot(),
                    "fleet_workers": list(self.workers),
                },
            ),
            counters=self.counters,
            instants=self.instants,
        )


def stitch(telemetries: Iterable[WorkerTelemetry]) -> FleetTrace:
    """Merge worker exports into one fleet timeline.

    Ids are re-based deterministically in worker order: worker *k*'s
    span/trace ids are shifted past the running maximum of workers
    ``0..k-1``, so the merged id space is collision-free and a given
    (worker order, telemetry) input always stitches to the identical
    output.  Spans gain a ``worker`` attribute; counters and instants are
    concatenated (their series names already carry the worker's registry
    namespace); registries merge via exact histogram merge.
    """
    telems = list(telemetries)
    workers = [t.worker for t in telems]
    if len(set(workers)) != len(workers):
        raise ValueError(f"duplicate worker labels: {workers}")
    spans: List[SpanDict] = []
    counters: List[Dict[str, object]] = []
    instants: List[Dict[str, object]] = []
    registry = MetricsRegistry(namespace="fleet")
    span_base = 0
    trace_base = 0
    for t in telems:
        for s in t.spans:
            out = dict(s)
            out["span_id"] = int(cast(int, s["span_id"])) + span_base
            out["trace_id"] = int(cast(int, s["trace_id"])) + trace_base
            parent = s.get("parent_id")
            out["parent_id"] = (None if parent is None
                                else int(cast(int, parent)) + span_base)
            attrs = dict(cast(Dict[str, object], s.get("attrs") or {}))
            attrs["worker"] = t.worker
            out["attrs"] = attrs
            spans.append(cast(SpanDict, out))
        counters.extend(dict(c) for c in t.counters)
        instants.extend(dict(i) for i in t.instants)
        if t.metrics:
            registry.merge_state(t.metrics)
        span_base += t.max_span_id
        trace_base += t.max_trace_id
    spans.sort(key=lambda s: (cast(float, s["start"]),
                              cast(int, s["span_id"])))
    counters.sort(key=lambda c: (cast(float, c["t"]), str(c["name"])))
    instants.sort(key=lambda i: (cast(float, i["t"]), str(i["name"])))
    return FleetTrace(
        workers=workers,
        spans=spans,
        counters=counters,
        instants=instants,
        registry=registry,
    )


def merged_histogram_state(
    telemetries: Sequence[WorkerTelemetry], name_suffix: str
) -> Dict[str, object]:
    """Merge the per-worker histograms whose name ends with a suffix.

    Convenience for fleet health: each worker records e.g.
    ``shard3.fleet.demand_miss_latency``; this returns the exact merge of
    every such histogram as a :meth:`LogHistogram.to_state` dict.
    """
    from .metrics import LogHistogram

    merged: Optional[LogHistogram] = None
    for t in telemetries:
        hists = cast(Dict[str, Dict[str, object]],
                     t.metrics.get("histograms", {}))
        for name, state in sorted(hists.items()):
            if not name.endswith(name_suffix):
                continue
            if merged is None:
                merged = LogHistogram.from_state(state)
                merged.name = name_suffix
            else:
                merged.merge(LogHistogram.from_state(state))
    if merged is None:
        merged = LogHistogram(name_suffix)
    return merged.to_state()

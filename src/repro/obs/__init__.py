"""repro.obs — sim-time-aware observability for the streaming pipeline.

The paper's evaluation is a latency-attribution exercise (Figures 9-12):
every claim is about *where* a view-set access's wait went.  This package
supplies the machinery to record and read that attribution:

* :mod:`~repro.obs.tracer` — hierarchical spans over simulated time, with a
  free no-op mode so instrumentation can stay in hot paths;
* :mod:`~repro.obs.metrics` — counters, gauges and log-scale histograms
  (fixed-ratio buckets spanning the four latency decades);
* :mod:`~repro.obs.samplers` — periodic probes of link utilization, depot
  service, scheduler class occupancy and cache fill;
* :mod:`~repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto) and
  NetLogger-style JSONL writers, plus a loader for both;
* :mod:`~repro.obs.report` — the ``trace-report`` CLI's waterfall and
  per-stage breakdown tables;
* :mod:`~repro.obs.fleet` — per-worker telemetry export and the fleet
  stitcher (one merged timeline and registry across shard processes);
* :mod:`~repro.obs.health` — depot load skew, fleet QGR and demand-miss
  latency distributions over merged telemetry;
* :mod:`~repro.obs.slo` — error budgets and multi-window burn-rate
  evaluation over the demand-miss stream;
* :mod:`~repro.obs.flightrec` — a bounded ring of recent telemetry,
  dumped on fault or SLO breach.
"""

from .export import (
    chrome_trace_events,
    load_trace,
    write_chrome_trace,
    write_jsonl,
)
from .fleet import (
    FleetTrace,
    WorkerTelemetry,
    export_telemetry,
    merged_histogram_state,
    stitch,
)
from .flightrec import FlightRecorder
from .health import (
    DepotStat,
    FleetHealth,
    demand_miss_histogram,
    depot_stats_from_registry,
    fleet_health,
    fleet_qgr,
    gini,
    load_skew,
    miss_events,
)
from .metrics import (
    Counter,
    Gauge,
    GaugeRecord,
    HistogramRecord,
    LogHistogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from .report import (
    render_breakdown_table,
    render_waterfall,
    stage_breakdown,
    trace_report,
)
from .slo import (
    DEFAULT_WINDOWS,
    BurnWindow,
    SLOReport,
    SLOTarget,
    WindowVerdict,
    evaluate_slo,
)
from .samplers import (
    CacheSampler,
    DepotSampler,
    LinkUtilizationSampler,
    PeriodicSampler,
    SchedulerOccupancySampler,
    standard_samplers,
)
from .tracer import (
    NOOP_SPAN,
    NULL_TRACER,
    NoopSpan,
    Span,
    SpanDict,
    SpanLike,
    Tracer,
)

__all__ = [
    "Span",
    "SpanDict",
    "SpanLike",
    "Tracer",
    "NoopSpan",
    "NOOP_SPAN",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "GaugeRecord",
    "HistogramRecord",
    "LogHistogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PeriodicSampler",
    "LinkUtilizationSampler",
    "DepotSampler",
    "SchedulerOccupancySampler",
    "CacheSampler",
    "standard_samplers",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "load_trace",
    "stage_breakdown",
    "render_breakdown_table",
    "render_waterfall",
    "trace_report",
    "FleetTrace",
    "WorkerTelemetry",
    "export_telemetry",
    "merged_histogram_state",
    "stitch",
    "DepotStat",
    "FleetHealth",
    "demand_miss_histogram",
    "depot_stats_from_registry",
    "fleet_health",
    "fleet_qgr",
    "gini",
    "load_skew",
    "miss_events",
    "SLOTarget",
    "SLOReport",
    "BurnWindow",
    "WindowVerdict",
    "DEFAULT_WINDOWS",
    "evaluate_slo",
    "FlightRecorder",
]

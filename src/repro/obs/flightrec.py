"""Flight recorder: a bounded ring of recent telemetry, dumped on demand.

Fleet runs are long and mostly healthy; the interesting part of a fault
is the few seconds *before* it.  A :class:`FlightRecorder` subscribes to
a :class:`~repro.obs.tracer.Tracer` through its listener hooks and keeps
the most recent finished spans and counter samples in fixed-size ring
buffers — O(capacity) memory no matter how long the run is.  When a
fault fires (:mod:`repro.lon.faults`), an SLO window breaches, or a
caller asks, :meth:`trigger` freezes the rings — plus any spans still
open at that instant — into a dump; :meth:`write_dumps` writes each dump
as a standalone JSON file.

All timestamps are simulated seconds straight off the recorded spans;
the recorder itself never reads a clock, so dumps are bit-reproducible
across runs.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Deque, Dict, List, Optional

from .tracer import Span, Tracer

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded ring buffer of recent spans and counter samples.

    Parameters
    ----------
    capacity:
        Max finished spans retained (counter samples get ``4 * capacity``
        slots — samplers tick much faster than spans close).
    worker:
        Label stamped into every dump (e.g. ``"shard3"``).
    """

    def __init__(self, capacity: int = 256, worker: str = "") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.worker = worker
        self._spans: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._counters: Deque[Dict[str, object]] = deque(
            maxlen=4 * capacity)
        self._tracer: Optional[Tracer] = None
        #: frozen dumps, in trigger order
        self.dumps: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    def attach(self, tracer: Tracer) -> "FlightRecorder":
        """Start recording this tracer's telemetry (one tracer at a time)."""
        if self._tracer is not None:
            self.detach()
        self._tracer = tracer
        tracer.add_listener(self._on_telemetry)
        return self

    def detach(self) -> None:
        """Stop recording (keeps buffered data and existing dumps)."""
        if self._tracer is not None:
            self._tracer.remove_listener(self._on_telemetry)
            self._tracer = None

    def _on_telemetry(self, kind: str, payload: object) -> None:
        if kind == "span" and isinstance(payload, Span):
            self._spans.append(payload.to_dict())
        elif kind == "counter" and isinstance(payload, dict):
            self._counters.append(dict(payload))
        # instants ride along in the counter ring: they are rare and
        # carry the same (name, t) shape the dump reader wants
        elif kind == "instant" and isinstance(payload, dict):
            self._counters.append(dict(payload))

    # ------------------------------------------------------------------
    @property
    def span_count(self) -> int:
        return len(self._spans)

    def trigger(self, reason: str, t: Optional[float] = None) -> Dict[str, object]:
        """Freeze the rings into a dump (returned and kept in ``dumps``).

        ``t`` is the simulated time of the triggering event; when omitted
        it falls back to the latest end time in the ring.  Spans still
        open on the attached tracer are included with ``"open": True`` —
        a fault usually interrupts work mid-span, and those interrupted
        spans are exactly what the post-mortem wants.
        """
        spans = [dict(s) for s in self._spans]
        if t is None:
            t = max((float(s["end"]) for s in spans),  # type: ignore[arg-type]
                    default=0.0)
        open_spans: List[Dict[str, object]] = []
        if self._tracer is not None:
            for live in self._tracer.spans:
                if live.end is None:
                    d = dict(live.to_dict())
                    d["open"] = True
                    open_spans.append(d)
        dump: Dict[str, object] = {
            "format": "repro.flight/1",
            "worker": self.worker,
            "reason": reason,
            "t": t,
            "capacity": self.capacity,
            "spans": spans,
            "open_spans": open_spans,
            "counters": [dict(c) for c in self._counters],
        }
        self.dumps.append(dump)
        return dump

    def write_dumps(
        self, directory: str, prefix: str = "worker"
    ) -> List[str]:
        """Write every dump as ``flight-<prefix>-<seq>-<reason>.json``."""
        os.makedirs(directory, exist_ok=True)
        paths: List[str] = []
        for seq, dump in enumerate(self.dumps):
            reason = str(dump["reason"])
            slug = "".join(c if (c.isalnum() or c in "-_") else "-"
                           for c in reason) or "dump"
            path = os.path.join(
                directory, f"flight-{prefix}-{seq}-{slug}.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(dump, fh)
            paths.append(path)
        return paths

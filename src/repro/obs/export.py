"""Trace exporters and loaders.

Two output formats, both built from :meth:`Tracer.span_dicts`:

* **Chrome ``trace_event`` JSON** — loadable in Perfetto / ``chrome://tracing``.
  Each trace tree (root span) gets its own track (``tid``), grouped into
  processes (``pid``) by root category: demand accesses, prefetch flights,
  staging pipelines and ungrouped transfers each render as separate
  process lanes, with sampler series as counter tracks.  Span/trace ids are
  embedded in ``args`` so a saved file round-trips through
  :func:`load_trace` back into span dicts for ``trace-report``.
* **NetLogger-style JSONL** — one JSON object per line with ``ts``/
  ``event``/``lvl`` fields in the spirit of the NetLogger best-practice
  logs the paper's lineage used: every span emits a ``<name>.start`` and
  ``<name>.end`` pair, instants and counter samples one line each.

Sim-time seconds are stored as microseconds in Chrome ``ts``/``dur`` fields
(the format's native unit).
"""

from __future__ import annotations

import json
import os
from typing import IO, Dict, Iterable, List, Mapping, Optional, Tuple, Union, cast

from .tracer import Tracer

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "load_trace",
]

_US = 1e6  # seconds -> microseconds

# pid lanes: category of the *root* span decides the process a tree lands in
_PID_BY_CATEGORY = {
    "access": (1, "demand accesses"),
    "prefetch": (2, "prefetch"),
    "staging": (3, "staging"),
}
_PID_OTHER = (4, "transfers")
_PID_COUNTERS = (5, "samplers")

#: a span as handed to the exporters: either a strict
#: :class:`~repro.obs.tracer.SpanDict` from a live tracer or a loose dict
#: loaded back out of a trace file
SpanDict = Mapping[str, object]


def _span_sort_key(span: SpanDict) -> Tuple[float, int]:
    return (cast(float, span["start"]), cast(int, span["span_id"]))


def chrome_trace_events(
    spans: Iterable[SpanDict],
    counters: Iterable[Dict[str, object]] = (),
    instants: Iterable[Dict[str, object]] = (),
) -> List[Dict[str, object]]:
    """Build the ``traceEvents`` list from span/counter/instant dicts."""
    spans = sorted(spans, key=_span_sort_key)

    # Assign each trace tree a (pid, tid) track keyed by its root span.
    track: Dict[int, Tuple[int, int, str]] = {}  # trace_id -> (pid, tid, label)
    pids_seen: Dict[int, str] = {}
    next_tid: Dict[int, int] = {}
    for span in spans:
        if span["parent_id"] is not None:
            continue
        cat = str(span.get("cat") or "")
        pid, pid_label = _PID_BY_CATEGORY.get(cat, _PID_OTHER)
        pids_seen.setdefault(pid, pid_label)
        tid = next_tid.get(pid, 1)
        next_tid[pid] = tid + 1
        track[cast(int, span["trace_id"])] = (pid, tid, str(span["name"]))

    events: List[Dict[str, object]] = []
    for pid, label in sorted(pids_seen.items()):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
    for _trace_id, (pid, tid, label) in track.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": label},
        })

    for span in spans:
        # orphan children whose root is missing park on tid 0
        pid, tid, _ = track.get(cast(int, span["trace_id"]),
                                (_PID_OTHER[0], 0, ""))
        start = float(cast(float, span["start"]))
        end = float(cast(float, span["end"]))
        args: Dict[str, object] = {
            "span_id": span["span_id"],
            "trace_id": span["trace_id"],
            "parent_id": span["parent_id"],
        }
        attrs = cast(Dict[str, object], span.get("attrs") or {})
        args.update(attrs)
        events.append({
            "name": span["name"],
            "cat": span.get("cat") or "span",
            "ph": "X",
            "ts": start * _US,
            "dur": max(0.0, end - start) * _US,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
        for ev in cast(List[Dict[str, object]],
                       span.get("events") or ()):
            ev_args = {k: v for k, v in ev.items() if k not in ("name", "t")}
            ev_args["span_id"] = span["span_id"]
            events.append({
                "name": ev["name"],
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": float(cast(float, ev["t"])) * _US,
                "pid": pid,
                "tid": tid,
                "args": ev_args,
            })

    cpid, clabel = _PID_COUNTERS
    any_counter = False
    for sample in counters:
        any_counter = True
        events.append({
            "name": sample["name"],
            "cat": "counter",
            "ph": "C",
            "ts": float(sample["t"]) * _US,
            "pid": cpid,
            "tid": 0,
            "args": {"value": sample["value"]},
        })
    if any_counter:
        events.append({
            "name": "process_name", "ph": "M", "pid": cpid, "tid": 0,
            "args": {"name": clabel},
        })

    for ev in instants:
        ev_args = {k: v for k, v in ev.items() if k not in ("name", "t")}
        events.append({
            "name": ev["name"],
            "cat": "instant",
            "ph": "i",
            "s": "g",
            "ts": float(ev["t"]) * _US,
            "pid": _PID_OTHER[0],
            "tid": 0,
            "args": ev_args,
        })
    return events


def write_chrome_trace(
    tracer_or_spans: Union[Tracer, Iterable[SpanDict]],
    path_or_file: Union[str, os.PathLike, IO[str]],
    metrics_snapshot: Optional[Dict[str, object]] = None,
    counters: Optional[List[Dict[str, object]]] = None,
    instants: Optional[List[Dict[str, object]]] = None,
) -> int:
    """Write a Chrome/Perfetto trace file; returns the event count.

    ``counters``/``instants`` override the tracer's own lists — the fleet
    stitcher passes merged spans with merged sample streams.
    """
    if isinstance(tracer_or_spans, Tracer):
        spans = tracer_or_spans.span_dicts()
        counters = tracer_or_spans.counters if counters is None else counters
        instants = tracer_or_spans.instants if instants is None else instants
    else:
        spans = list(tracer_or_spans)
        counters = [] if counters is None else counters
        instants = [] if instants is None else instants
    events = chrome_trace_events(spans, counters, instants)
    other: Dict[str, object] = {
        "clock": "sim-seconds", "format": "repro.obs/1",
    }
    if metrics_snapshot is not None:
        other["metrics"] = metrics_snapshot
    doc: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    if isinstance(path_or_file, (str, os.PathLike)):
        with open(path_or_file, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
    else:
        json.dump(doc, path_or_file)
    return len(events)


def write_jsonl(
    tracer: Tracer,
    path_or_file: Union[str, os.PathLike, IO[str]],
) -> int:
    """Write a NetLogger-style JSONL event log; returns the line count."""
    lines: List[Dict[str, object]] = []
    for span in tracer.span_dicts():
        base = {
            "trace_id": span["trace_id"],
            "span_id": span["span_id"],
            "parent_id": span["parent_id"],
        }
        lines.append({
            "ts": span["start"], "event": f"{span['name']}.start",
            "lvl": "INFO", "cat": span.get("cat") or "",
            **base, **(span.get("attrs") or {}),
        })
        for ev in cast(List[Dict[str, object]],
                       span.get("events") or ()):
            lines.append({
                "ts": ev["t"], "event": f"{span['name']}.{ev['name']}",
                "lvl": "INFO", **base,
            })
        lines.append({
            "ts": span["end"], "event": f"{span['name']}.end",
            "lvl": "INFO",
            "dur": cast(float, span["end"]) - cast(float, span["start"]),
            **base,
        })
    for ev in tracer.instants:
        lines.append({
            "ts": ev["t"], "event": ev["name"], "lvl": "INFO",
            **{k: v for k, v in ev.items() if k not in ("name", "t")},
        })
    for sample in tracer.counters:
        lines.append({
            "ts": sample["t"], "event": f"counter.{sample['name']}",
            "lvl": "DEBUG", "value": sample["value"],
        })
    lines.sort(key=lambda rec: cast(float, rec["ts"]))
    if isinstance(path_or_file, (str, os.PathLike)):
        with open(path_or_file, "w", encoding="utf-8") as fh:
            for rec in lines:
                fh.write(json.dumps(rec) + "\n")
    else:
        for rec in lines:
            path_or_file.write(json.dumps(rec) + "\n")
    return len(lines)


def _spans_from_chrome(doc: Dict[str, object]) -> List[SpanDict]:
    spans: List[SpanDict] = []
    for ev in cast(List[Dict[str, object]], doc.get("traceEvents") or []):
        if ev.get("ph") != "X":
            continue
        args = cast(Dict[str, object], ev.get("args") or {})
        if "span_id" not in args:
            continue
        attrs = {k: v for k, v in args.items()
                 if k not in ("span_id", "trace_id", "parent_id")}
        start = float(cast(float, ev["ts"])) / _US
        spans.append({
            "name": ev.get("name", ""),
            "cat": ev.get("cat", ""),
            "trace_id": args.get("trace_id"),
            "span_id": args["span_id"],
            "parent_id": args.get("parent_id"),
            "start": start,
            "end": start + float(cast(float, ev.get("dur", 0.0))) / _US,
            "attrs": attrs,
            "events": [],
        })
    return spans


def _spans_from_jsonl(text: str) -> List[SpanDict]:
    open_spans: Dict[int, Dict[str, object]] = {}
    done: List[Dict[str, object]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        event = rec.get("event", "")
        sid = rec.get("span_id")
        if sid is None:
            continue
        if event.endswith(".start"):
            attrs = {k: v for k, v in rec.items()
                     if k not in ("ts", "event", "lvl", "cat", "trace_id",
                                  "span_id", "parent_id")}
            open_spans[sid] = {
                "name": event[:-len(".start")],
                "cat": rec.get("cat", ""),
                "trace_id": rec.get("trace_id"),
                "span_id": sid,
                "parent_id": rec.get("parent_id"),
                "start": float(rec["ts"]),
                "end": float(rec["ts"]),
                "attrs": attrs,
                "events": [],
            }
        elif event.endswith(".end") and sid in open_spans:
            span = open_spans.pop(sid)
            span["end"] = float(rec["ts"])
            done.append(span)
    done.extend(open_spans.values())
    done.sort(key=_span_sort_key)
    return cast(List[SpanDict], done)


def load_trace(path: str) -> List[SpanDict]:
    """Load span dicts back out of either export format (auto-detected)."""
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            return _spans_from_jsonl(text)
        if isinstance(doc, dict) and "traceEvents" in doc:
            return _spans_from_chrome(doc)
    return _spans_from_jsonl(text)

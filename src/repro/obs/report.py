"""Trace analysis: per-access waterfalls and per-stage latency breakdowns.

This is the read side of the observability layer — the ``python -m repro
trace-report`` CLI and :meth:`SessionMetrics.breakdown` both land here.  The
input is the span-dict list produced by :meth:`Tracer.span_dicts` or
recovered from a saved trace via :func:`repro.obs.export.load_trace`; the
output reproduces the paper's latency-attribution story as tables: where did
each access's wait go (request RPC, queue wait, network transfer, shipping,
decompression), split by the :class:`AccessSource` tier that served it.

Quantiles here are *exact* (computed from the raw per-access durations, not
histogram buckets) because a report over a finished trace has all the data
in hand.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union, cast

__all__ = [
    "stage_breakdown",
    "render_breakdown_table",
    "render_waterfall",
    "trace_report",
]

#: spans as read here: strict tracer dicts or loose loaded dicts both fit
SpanDict = Mapping[str, object]

#: canonical display order of the demand-path stages
STAGE_ORDER = [
    "request-rpc",
    "queue-wait",
    "cache-lookup",
    "network-transfer",
    "ship-to-console",
    "decompress",
]


def _duration(span: SpanDict) -> float:
    return float(cast(float, span["end"])) - float(cast(float, span["start"]))


def _children_by_parent(spans: Sequence[SpanDict]) -> Dict[int, List[SpanDict]]:
    out: Dict[int, List[SpanDict]] = {}
    for s in spans:
        pid = s.get("parent_id")
        if pid is not None:
            out.setdefault(cast(int, pid), []).append(s)
    return out


def access_roots(spans: Sequence[SpanDict]) -> List[SpanDict]:
    """Root spans representing client accesses, ordered by access index."""
    roots = [
        s for s in spans
        if s.get("parent_id") is None and s.get("cat") == "access"
    ]
    roots.sort(key=lambda s: (
        cast(int, cast(Dict[str, object],
                       s.get("attrs") or {}).get("index", 0)),
        cast(float, s["start"]),
    ))
    return roots


def exact_quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile over raw values (0 for an empty set)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def stage_breakdown(
    spans: Iterable[SpanDict],
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per-stage latency statistics, keyed source tier -> stage name.

    Returns ``{source: {stage: {count, mean, p50, p95, total}}}`` where
    ``source`` is an :class:`AccessSource` value string (``"wan"``,
    ``"hit"``, ...) taken from each access root span's ``source`` attribute,
    and the stages are that access's direct ``"stage"``-category child
    spans (the client's exact partition of the wait; fetch/transfer detail
    spans under the same root are not stages and are skipped).
    """
    spans = list(spans)
    children = _children_by_parent(spans)
    acc: Dict[str, Dict[str, List[float]]] = {}
    for root in access_roots(spans):
        attrs = cast(Dict[str, object], root.get("attrs") or {})
        source = str(attrs.get("source", "unknown"))
        per_source = acc.setdefault(source, {})
        kids = [c for c in children.get(cast(int, root["span_id"]), [])
                if c.get("cat") == "stage"]
        if not kids:
            per_source.setdefault("total", []).append(_duration(root))
            continue
        for child in kids:
            per_source.setdefault(str(child["name"]), []).append(
                _duration(child)
            )
        per_source.setdefault("total", []).append(_duration(root))
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for source, stages in acc.items():
        out[source] = {}
        for stage, durs in stages.items():
            out[source][stage] = {
                "count": float(len(durs)),
                "mean": sum(durs) / len(durs),
                "p50": exact_quantile(durs, 0.50),
                "p95": exact_quantile(durs, 0.95),
                "total": sum(durs),
            }
    return out


def _stage_sort_key(stage: str) -> Tuple[int, Union[int, str]]:
    try:
        return (0, STAGE_ORDER.index(stage))
    except ValueError:
        return (1 if stage != "total" else 2, stage)


def render_breakdown_table(
    breakdown: Dict[str, Dict[str, Dict[str, float]]],
) -> str:
    """Format a breakdown dict as an aligned text table."""
    lines: List[str] = []
    header = (f"{'source':<12} {'stage':<18} {'count':>6} "
              f"{'mean_ms':>10} {'p50_ms':>10} {'p95_ms':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    for source in sorted(breakdown):
        stages = breakdown[source]
        for stage in sorted(stages, key=_stage_sort_key):
            st = stages[stage]
            lines.append(
                f"{source:<12} {stage:<18} {int(st['count']):>6} "
                f"{st['mean'] * 1e3:>10.3f} {st['p50'] * 1e3:>10.3f} "
                f"{st['p95'] * 1e3:>10.3f}"
            )
    return "\n".join(lines)


def render_waterfall(
    spans: Iterable[SpanDict],
    max_accesses: Optional[int] = None,
    width: int = 48,
) -> str:
    """Per-access waterfall: one block per access, one bar row per stage.

    Bars are positioned within the access's own [start, end] window, so a
    1 s WAN access and a 0.2 ms cache hit are each readable at full width.
    """
    spans = list(spans)
    children = _children_by_parent(spans)
    roots = access_roots(spans)
    if max_accesses is not None:
        roots = roots[:max_accesses]
    lines: List[str] = []
    for root in roots:
        attrs = cast(Dict[str, object], root.get("attrs") or {})
        total = _duration(root)
        index = attrs.get("index", "?")
        source = attrs.get("source", "?")
        vid = attrs.get("viewset", attrs.get("vid", ""))
        lines.append(
            f"access #{index}  {vid}  source={source}  "
            f"total={total * 1e3:.3f} ms  "
            f"(t={float(cast(float, root['start'])):.3f}s)"
        )
        kids = sorted(
            children.get(cast(int, root["span_id"]), []),
            key=lambda s: (cast(float, s["start"]), cast(int, s["span_id"])),
        )
        t0 = float(cast(float, root["start"]))
        t1 = float(cast(float, root["end"]))
        window = max(t1 - t0, 1e-12)
        for child in kids:
            s = (float(cast(float, child["start"])) - t0) / window
            e = (float(cast(float, child["end"])) - t0) / window
            a = int(round(s * width))
            b = max(a, int(round(e * width)))
            bar = " " * a + "#" * max(b - a, 1 if e > s else 0)
            lines.append(
                f"  {str(child['name']):<18} |{bar:<{width}}| "
                f"{_duration(child) * 1e3:>10.3f} ms"
            )
        lines.append("")
    return "\n".join(lines).rstrip("\n")


def trace_report(
    path: str,
    max_accesses: Optional[int] = 10,
    waterfall: bool = True,
) -> str:
    """Load a saved trace file and render the full report text."""
    from .export import load_trace

    spans = load_trace(path)
    roots = access_roots(spans)
    parts: List[str] = []
    parts.append(
        f"trace: {path}  ({len(spans)} spans, {len(roots)} accesses)"
    )
    if waterfall and roots:
        parts.append("")
        parts.append("== per-access waterfall ==")
        parts.append(render_waterfall(spans, max_accesses=max_accesses))
        shown = len(roots) if max_accesses is None else min(
            len(roots), max_accesses
        )
        if shown < len(roots):
            parts.append(f"... ({len(roots) - shown} more accesses)")
    parts.append("")
    parts.append("== per-stage latency breakdown ==")
    parts.append(render_breakdown_table(stage_breakdown(spans)))
    return "\n".join(parts)

"""Periodic samplers: turn live components into gauge time series.

Spans capture *per-request* structure; these samplers capture *system state
over time* — the two views NetLogger-style analyses cross-reference (e.g.
"this access was slow because the WAN link was at 100% serving staging").
Each sampler ticks at a fixed sim-time period on the session's event queue;
every tick writes current values into
:class:`~repro.obs.metrics.MetricsRegistry` gauges and emits Chrome
counter-track samples through the tracer, so the series render under the
span tracks in Perfetto.

Samplers are only wired when tracing is enabled — they cost simulated-time
events, so benchmarks must not carry them silently.

This module deliberately duck-types its targets (network, scheduler, depots,
agent) instead of importing :mod:`repro.lon` at runtime:
:mod:`repro.lon.scheduler` imports the tracer from this package, and a
runtime import back into ``lon`` would close an import cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List

from .metrics import MetricsRegistry
from .tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only (see module docstring)
    from ..lon.ibp import Depot
    from ..lon.network import Network
    from ..lon.scheduler import TransferScheduler
    from ..lon.simtime import EventQueue

__all__ = [
    "PeriodicSampler",
    "LinkUtilizationSampler",
    "DepotSampler",
    "SchedulerOccupancySampler",
    "CacheSampler",
    "standard_samplers",
]


class PeriodicSampler:
    """Base class: a named probe ticking every ``period`` sim seconds."""

    def __init__(
        self,
        queue: EventQueue,
        tracer: Tracer,
        registry: MetricsRegistry,
        period: float = 0.5,
        name: str = "sampler",
    ) -> None:
        if period <= 0:
            raise ValueError("sample period must be positive")
        self.queue = queue
        self.tracer = tracer
        self.registry = registry
        self.period = period
        self.name = name
        self.ticks = 0
        self._event = None
        self._running = False

    @property
    def running(self) -> bool:
        """True while a tick is pending."""
        return self._running

    def start(self, delay: float = 0.0) -> None:
        """Arm the first sample ``delay`` seconds from now."""
        if self._running:
            return
        self._running = True
        self._event = self.queue.schedule_in(delay, self._tick, self.name)

    def stop(self) -> None:
        """Cancel future samples (pending tick dropped)."""
        self._running = False
        if self._event is not None:
            self.queue.cancel(self._event)
            self._event = None

    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        self.sample()
        self._event = self.queue.schedule_in(
            self.period, self._tick, self.name
        )

    def emit(self, series: str, value: float) -> None:
        """Record one sample into both the registry and the trace.

        The registry qualifies ``series`` with its namespace; the trace
        counter reuses the gauge's *qualified* name so both views of the
        series agree — callers never prepend shard/worker prefixes by
        hand, the registry namespace is the single source of naming.
        """
        gauge = self.registry.gauge(series)
        gauge.set(value)
        self.tracer.counter(gauge.name, value)

    def sample(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class LinkUtilizationSampler(PeriodicSampler):
    """Per-link utilization (allocated rate / capacity), 0..1."""

    def __init__(self, queue: EventQueue, tracer: Tracer,
                 registry: MetricsRegistry, network: Network,
                 period: float = 0.5) -> None:
        super().__init__(queue, tracer, registry, period, "sample-links")
        self.network = network

    def sample(self) -> None:
        for (a, b), util in sorted(self.network.link_utilization().items()):
            self.emit(f"link.{a}--{b}.utilization", util)


class DepotSampler(PeriodicSampler):
    """Per-depot service counters: bytes served and in-flight flow count.

    "Bytes served" counts both service modes — direct loads to a client and
    third-party ``copy_out`` sourcing — plus ingest stores, since all three
    consume the depot's disk/NIC.  "Queue depth" is the number of active
    network flows touching the depot's node (either direction).
    """

    def __init__(self, queue: EventQueue, tracer: Tracer,
                 registry: MetricsRegistry, depots: Iterable["Depot"],
                 network: Network, period: float = 0.5) -> None:
        super().__init__(queue, tracer, registry, period, "sample-depots")
        self.depots = list(depots)
        self.network = network

    def sample(self) -> None:
        flows = self.network.active_flows
        for depot in self.depots:
            served = (depot.stats.bytes_loaded + depot.stats.bytes_copied
                      + depot.stats.bytes_stored)
            depth = sum(
                1 for f in flows
                if depot.name in (f.src, f.dst) and not f.paused
            )
            self.emit(f"depot.{depot.name}.bytes_served", served)
            self.emit(f"depot.{depot.name}.queue_depth", depth)
            self.registry.gauge(f"depot.{depot.name}.used_bytes").set(
                depot.used
            )


class SchedulerOccupancySampler(PeriodicSampler):
    """How many admitted transfers run in each priority class."""

    def __init__(self, queue: EventQueue, tracer: Tracer,
                 registry: MetricsRegistry, scheduler: TransferScheduler,
                 period: float = 0.5) -> None:
        super().__init__(queue, tracer, registry, period, "sample-scheduler")
        self.scheduler = scheduler

    def sample(self) -> None:
        # scheduler.weights enumerates every priority class, so idle classes
        # still emit an explicit zero sample
        counts = {prio: 0 for prio in self.scheduler.weights}
        for handle in self.scheduler.active_handles:
            counts[handle.priority] = counts.get(handle.priority, 0) + 1
        for prio, n in counts.items():
            self.emit(f"scheduler.{prio.name.lower()}.active", n)


class CacheSampler(PeriodicSampler):
    """Client-agent cache fill and LAN-depot staging coverage.

    Accepts one agent or several (the multi-client harness).  A single
    agent keeps the historical series names (``agent.cache.bytes`` ...);
    with several, each agent's series is namespaced by its node
    (``agent.<node>.cache.bytes``) and an aggregate ``agents.cache.bytes``
    totals the fleet.
    """

    def __init__(self, queue: EventQueue, tracer: Tracer,
                 registry: MetricsRegistry, agent: object,
                 period: float = 0.5) -> None:
        super().__init__(queue, tracer, registry, period, "sample-cache")
        self.agents = (list(agent) if isinstance(agent, (list, tuple))
                       else [agent])

    def sample(self) -> None:
        if len(self.agents) == 1:
            agent = self.agents[0]
            self.emit("agent.cache.bytes", agent._payload_total)
            self.emit("agent.cache.payloads", len(agent._payloads))
            self.emit("agent.staged.viewsets", len(agent._staged_lan))
            return
        total_bytes = total_payloads = total_staged = 0
        for agent in self.agents:
            prefix = f"agent.{agent.node}"
            self.emit(f"{prefix}.cache.bytes", agent._payload_total)
            self.emit(f"{prefix}.cache.payloads", len(agent._payloads))
            self.emit(f"{prefix}.staged.viewsets", len(agent._staged_lan))
            total_bytes += agent._payload_total
            total_payloads += len(agent._payloads)
            total_staged += len(agent._staged_lan)
        self.emit("agents.cache.bytes", total_bytes)
        self.emit("agents.cache.payloads", total_payloads)
        self.emit("agents.staged.viewsets", total_staged)


def standard_samplers(
    queue: EventQueue,
    tracer: Tracer,
    registry: MetricsRegistry,
    network: Network,
    scheduler: TransferScheduler,
    depots: Iterable["Depot"],
    agent: object,
    period: float = 0.5,
) -> List[PeriodicSampler]:
    """The full sampler set a traced session runs (not yet started).

    ``agent`` may be a single client agent or a list of them (multi-client
    sessions share one network/scheduler/depot fleet, so only the cache
    sampler fans out).
    """
    return [
        LinkUtilizationSampler(queue, tracer, registry, network, period),
        DepotSampler(queue, tracer, registry, depots, network, period),
        SchedulerOccupancySampler(queue, tracer, registry, scheduler, period),
        CacheSampler(queue, tracer, registry, agent, period),
    ]

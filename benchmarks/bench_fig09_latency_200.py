"""Figure 9: client latency per view-set access at 200², Cases 1-3.

Paper shape: Case 2 (data in WAN) pays ~0.5-2.5 s repeatedly; Cases 1 and 3
are indistinguishable after an initial phase of about one access — the LAN
depot makes remote browsing feel local at low resolution.
"""


from repro.experiments import experiment_resolutions, format_series


def _report_latency(suite, resolution, report, name):
    data = suite.latency_figure(resolution)
    parts = [
        format_series(f"case {case} latency s @ {resolution}", values)
        for case, values in data.items()
    ]
    summaries = [str(suite.run(c, resolution).summary()) for c in (1, 2, 3)]
    report(name, "\n\n".join(parts) + "\n\n" + "\n".join(summaries))
    return data


def _assert_paper_shape(suite, resolution):
    m1 = suite.run(1, resolution)
    m2 = suite.run(2, resolution)
    m3 = suite.run(3, resolution)
    # Case 1 is the ideal: never touches the WAN
    assert m1.wan_rate() == 0.0
    # Case 2 keeps paying WAN latency
    assert m2.wan_rate() > 0.0
    assert m2.mean_latency() > m1.mean_latency()
    # Case 3 ends its initial phase before the trace ends and then matches
    # local browsing
    phase = m3.initial_phase_length()
    assert phase < len(m3.accesses)
    steady3 = m3.mean_latency(skip=phase)
    steady1 = m1.mean_latency(skip=1)
    assert steady3 < max(5 * steady1, steady1 + 0.25)
    return m1, m2, m3


def test_fig09_latency_200(benchmark, suite, report):
    resolution = experiment_resolutions()[0]
    _report_latency(suite, resolution, report, "fig09_latency_200")
    m1, m2, m3 = _assert_paper_shape(suite, resolution)
    # at the lowest resolution the initial phase is very short
    # (paper: a single access)
    assert m3.initial_phase_length() <= 6

    # representative kernel: one fresh Case-3 session at this resolution
    result = benchmark.pedantic(
        lambda: suite.run(3, resolution, trace_seed=13),
        rounds=1, iterations=1,
    )
    assert len(result.accesses) > 0

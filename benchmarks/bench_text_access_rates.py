"""Section 4.3 statistics: WAN-access and hit rates in the initial phase.

Paper @500²: during the initial phase, 28% of accesses reach the WAN with a
LAN depot (Case 3) versus 69% without one (Case 2); hit rates are 33% vs
28%.  The decisive comparison — staging strictly reduces WAN traffic — must
reproduce; the absolute percentages depend on trace and simulator
calibration.
"""

import os


from repro.experiments import (
    access_rate_stats,
    experiment_resolutions,
    format_table,
)

_SMALL = os.environ.get("REPRO_SCALE", "default") == "small"


def test_text_access_rates(benchmark, suite, report):
    resolutions = experiment_resolutions()
    rows = [access_rate_stats(suite, res) for res in resolutions]
    table = format_table(
        headers=[
            "res", "case2 WAN%", "case3 WAN%", "case2 hit%", "case3 hit%",
            "case2 phase", "case3 phase", "paper WAN% (c2/c3 @500)",
        ],
        rows=[
            [
                r["resolution"],
                100 * r["case2_wan_rate_initial"],
                100 * r["case3_wan_rate_initial"],
                100 * r["case2_hit_rate_initial"],
                100 * r["case3_hit_rate_initial"],
                r["case2_initial_phase"],
                r["case3_initial_phase"],
                f"{100 * r['paper_case2_wan']:.0f}/"
                f"{100 * r['paper_case3_wan']:.0f}",
            ]
            for r in rows
        ],
        title="Section 4.3 — initial-phase access statistics",
    )
    report("text_access_rates", table)

    top = rows[-1]
    # who-wins: the LAN depot reduces initial-phase WAN traffic
    assert (
        top["case3_wan_rate_initial"] <= top["case2_wan_rate_initial"]
    )
    # and overall WAN rates keep the same ordering (strict at full scale)
    m2 = suite.run(2, top["resolution"])
    m3 = suite.run(3, top["resolution"])
    if _SMALL:
        assert m3.wan_rate() <= m2.wan_rate()
    else:
        assert m3.wan_rate() < m2.wan_rate()

    benchmark(access_rate_stats, suite, resolutions[0])

"""Section 4.1 text claims: generation time and per-view-set sizes.

Paper: the full database takes 2-4.5 h on 32 processors (dominated by I/O)
and compressed view sets run 1.2 MB (200²) to 7.8 MB (600²).  We time real
view-set generation, extrapolate to 288 view sets / 32 workers, and check
the measured per-view-set sizes against the quoted band.

``test_generation_acceleration`` executes the builtin ``generation`` sweep
spec (macrocell kernel vs brute marcher, the zlib level sweep, and the
per-view-set timing) through the sweep engine, which merges the runs into
``BENCH_generation.json`` at the repo root.
"""

import os

import pytest

from repro.experiments import (
    PAPER,
    format_table,
    run_sweep,
    spec_named,
    text_generation_time,
)

_SMALL = os.environ.get("REPRO_SCALE", "default") == "small"
RESOLUTION = 64 if _SMALL else 200


@pytest.fixture(scope="module")
def gen_stats():
    return text_generation_time(
        resolution=RESOLUTION, volume_size=32, sample_viewsets=2, workers=1
    )


def test_text_generation(benchmark, gen_stats, report):
    wall = gen_stats["wall_clock"]
    table = format_table(
        headers=["metric", "measured", "paper"],
        rows=[
            ["resolution", gen_stats["resolution"], "200-600"],
            ["s per view set (1 worker)",
             wall["seconds_per_viewset"], "-"],
            ["full DB hours (32 cpu)",
             wall["full_db_hours_on_32cpu"],
             f"{PAPER.generation_hours_band[0]}-"
             f"{PAPER.generation_hours_band[1]}"],
            ["compression ratio", gen_stats["compression_ratio"],
             "5-7"],
        ],
        title="Section 4.1 — database generation time",
    )
    report("text_generation", table)

    assert wall["seconds_per_viewset"] > 0
    assert gen_stats["compression_ratio"] > 2.0
    # our numpy generator extrapolates to within a couple orders of
    # magnitude of the paper's 32-CPU cluster; the lower edge accounts for
    # macrocell empty-space skipping, which the paper's generator lacked
    if not _SMALL:
        assert 0.005 < wall["full_db_hours_on_32cpu"] < 50

    # representative kernel: rendering one sample view
    from repro.lightfield import CameraLattice, LightFieldBuilder
    from repro.render.raycast import RenderSettings
    from repro.volume import neg_hip, preset

    builder = LightFieldBuilder(
        neg_hip(size=32), preset("neghip"), CameraLattice(72, 144, 6),
        resolution=RESOLUTION, workers=1,
        settings=RenderSettings(shaded=False),
    )
    cam = builder.camera_for(36, 72)
    frame = benchmark(builder.renderer._inline.render, cam)
    assert frame.shape == (RESOLUTION, RESOLUTION, 3)


def test_generation_acceleration(report):
    """Brute vs macrocell-accelerated generator kernel on the negHip scene.

    Runs the builtin ``generation`` sweep: wall-clock per sample view,
    marched steps per ray before/after, empty-macrocell fraction, speedup,
    the zlib speed/ratio sweep, and the per-view-set generation timing —
    merged by the engine into BENCH_generation.json.
    """
    result = run_sweep(spec_named("generation"), workers=1)
    doc = result.doc
    wall = doc["wall_clock"]
    print(f"wrote {result.artifact_path}")

    report("generation_acceleration", format_table(
        headers=["metric", "brute", "accelerated"],
        rows=[
            ["s / view", wall["brute_seconds_per_view"],
             wall["accelerated_seconds_per_view"]],
            ["steps / ray", doc["brute"]["steps_per_ray"],
             doc["accelerated"]["steps_per_ray"]],
            ["speedup", 1.0, wall["speedup"]],
            ["max |err|", 0.0, doc["max_abs_error"]],
        ],
        title="Generator kernel — macrocell empty-space skipping",
    ))

    # the macrocell classification must be effective on this scene and the
    # skipping lossless (ISSUE tolerance: 1e-3; in practice it is exact)
    assert doc["empty_cell_fraction"] >= 0.5
    assert doc["max_abs_error"] <= 1e-3
    assert (doc["accelerated"]["steps_per_ray"]
            < doc["brute"]["steps_per_ray"])
    # at the tiny smoke volume the kernel is too cheap for a stable
    # speedup bar; the full-scale bar matches the original benchmark
    if not _SMALL:
        assert wall["speedup"] > 1.5
    # zlib never compresses worse at a higher level (monotone ratios)
    ratios = [r["ratio"] for r in doc["zlib_levels"]]
    assert ratios[-1] >= ratios[0] * 0.99
    assert wall["seconds_per_viewset"] > 0

"""Section 4.1 text claims: generation time and per-view-set sizes.

Paper: the full database takes 2-4.5 h on 32 processors (dominated by I/O)
and compressed view sets run 1.2 MB (200²) to 7.8 MB (600²).  We time real
view-set generation, extrapolate to 288 view sets / 32 workers, and check
the measured per-view-set sizes against the quoted band.

``test_generation_acceleration`` additionally measures the macrocell
empty-space-skipping kernel against the brute-force marcher and emits the
machine-readable ``BENCH_generation.json`` artifact at the repo root.
"""

import os
import time

import numpy as np
import pytest

from repro.experiments import PAPER, format_table, text_generation_time

_SMALL = os.environ.get("REPRO_SCALE", "default") == "small"
RESOLUTION = 64 if _SMALL else 200


@pytest.fixture(scope="module")
def gen_stats():
    return text_generation_time(
        resolution=RESOLUTION, volume_size=32, sample_viewsets=2, workers=1
    )


def test_text_generation(benchmark, gen_stats, report):
    table = format_table(
        headers=["metric", "measured", "paper"],
        rows=[
            ["resolution", gen_stats["resolution"], "200-600"],
            ["s per view set (1 worker)",
             gen_stats["seconds_per_viewset"], "-"],
            ["full DB hours (32 cpu)",
             gen_stats["full_db_hours_on_32cpu"],
             f"{PAPER.generation_hours_band[0]}-"
             f"{PAPER.generation_hours_band[1]}"],
            ["compression ratio", gen_stats["compression_ratio"],
             "5-7"],
        ],
        title="Section 4.1 — database generation time",
    )
    report("text_generation", table)

    assert gen_stats["seconds_per_viewset"] > 0
    assert gen_stats["compression_ratio"] > 2.0
    # our numpy generator extrapolates to within a couple orders of
    # magnitude of the paper's 32-CPU cluster; the lower edge accounts for
    # macrocell empty-space skipping, which the paper's generator lacked
    if not _SMALL:
        assert 0.005 < gen_stats["full_db_hours_on_32cpu"] < 50

    # representative kernel: rendering one sample view
    from repro.lightfield import CameraLattice, LightFieldBuilder
    from repro.render.raycast import RenderSettings
    from repro.volume import neg_hip, preset

    builder = LightFieldBuilder(
        neg_hip(size=32), preset("neghip"), CameraLattice(72, 144, 6),
        resolution=RESOLUTION, workers=1,
        settings=RenderSettings(shaded=False),
    )
    cam = builder.camera_for(36, 72)
    frame = benchmark(builder.renderer._inline.render, cam)
    assert frame.shape == (RESOLUTION, RESOLUTION, 3)


def test_generation_acceleration(report, bench_json, gen_stats):
    """Brute vs macrocell-accelerated generator kernel on the negHip scene.

    Emits BENCH_generation.json: wall-clock per sample view, marched steps
    per ray before/after, empty-macrocell fraction, speedup, and the zlib
    speed/ratio sweep for the compression half of generation.
    """
    from dataclasses import replace

    from repro.lightfield import CameraLattice, LightFieldBuilder
    from repro.lightfield.compression import ZlibCodec
    from repro.render.camera import orbit_camera
    from repro.render.raycast import RaycastRenderer, RenderSettings
    from repro.volume import neg_hip, preset

    size = 32 if _SMALL else 64
    vol = neg_hip(size=size)
    tf = preset("neghip")
    settings = RenderSettings()  # accelerated=True, macrocell_size=4
    accel = RaycastRenderer(vol, tf, settings)
    brute = RaycastRenderer(vol, tf, replace(settings, accelerated=False))
    cells = accel.prepare()
    empty_fraction = 1.0 - cells.active_fraction

    cams = [
        orbit_camera(theta, phi, radius=3.0 * vol.bounding_radius,
                     resolution=RESOLUTION)
        for theta, phi in ((1.2, 0.6), (1.9, 2.4), (0.8, 4.1))
    ]

    def run(renderer):
        """Best-of-3 total wall seconds over the camera set + step stats."""
        best, steps = float("inf"), 0
        for _ in range(3):
            t0 = time.perf_counter()
            frames, steps, rays = [], 0, 0
            for cam in cams:
                frames.append(renderer.render(cam))
                steps += renderer.last_render_stats.steps
                rays += renderer.last_render_stats.rays
            best = min(best, time.perf_counter() - t0)
        return best, steps / rays, frames

    brute_s, brute_spr, brute_frames = run(brute)
    accel_s, accel_spr, accel_frames = run(accel)
    err = max(
        float(np.abs(a - b).max())
        for a, b in zip(accel_frames, brute_frames)
    )
    speedup = brute_s / accel_s

    lat = CameraLattice(n_theta=12, n_phi=24, l=3)
    builder = LightFieldBuilder(
        vol, tf, lat, resolution=RESOLUTION, workers=1, settings=settings,
    )
    vs = builder.render_viewset((2, 3))
    levels = []
    level_walls = {}
    for level in (1, 6, 9):
        result = ZlibCodec(level=level).compress(vs)
        levels.append({
            "level": result.level,
            "ratio": round(result.ratio, 3),
        })
        level_walls[str(result.level)] = round(result.compress_seconds, 4)

    payload = {
        "scene": f"neghip-{size}^3",
        "resolution": RESOLUTION,
        "macrocell_size": settings.macrocell_size,
        "empty_cell_fraction": round(empty_fraction, 4),
        "views_timed": len(cams),
        "brute": {"steps_per_ray": round(brute_spr, 2)},
        "accelerated": {"steps_per_ray": round(accel_spr, 2)},
        "max_abs_error": err,
        "zlib_levels": levels,
    }
    bench_json("generation", payload, wall_clock={
        "brute_seconds_per_view": round(brute_s / len(cams), 4),
        "accelerated_seconds_per_view": round(accel_s / len(cams), 4),
        "speedup": round(speedup, 3),
        "seconds_per_viewset": round(gen_stats["seconds_per_viewset"], 3),
        "zlib_compress_s": level_walls,
    })
    report("generation_acceleration", format_table(
        headers=["metric", "brute", "accelerated"],
        rows=[
            ["s / view", brute_s / len(cams), accel_s / len(cams)],
            ["steps / ray", brute_spr, accel_spr],
            ["speedup", 1.0, speedup],
            ["max |err|", 0.0, err],
        ],
        title="Generator kernel — macrocell empty-space skipping",
    ))

    # the macrocell classification must be effective on this scene and the
    # skipping lossless (ISSUE tolerance: 1e-3; in practice it is exact)
    assert empty_fraction >= 0.5
    assert err <= 1e-3
    assert accel_spr < brute_spr
    assert speedup > 1.5

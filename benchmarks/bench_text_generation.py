"""Section 4.1 text claims: generation time and per-view-set sizes.

Paper: the full database takes 2-4.5 h on 32 processors (dominated by I/O)
and compressed view sets run 1.2 MB (200²) to 7.8 MB (600²).  We time real
view-set generation, extrapolate to 288 view sets / 32 workers, and check
the measured per-view-set sizes against the quoted band.
"""

import os

import pytest

from repro.experiments import PAPER, format_table, text_generation_time

_SMALL = os.environ.get("REPRO_SCALE", "default") == "small"
RESOLUTION = 64 if _SMALL else 200


@pytest.fixture(scope="module")
def gen_stats():
    return text_generation_time(
        resolution=RESOLUTION, volume_size=32, sample_viewsets=2, workers=1
    )


def test_text_generation(benchmark, gen_stats, report):
    table = format_table(
        headers=["metric", "measured", "paper"],
        rows=[
            ["resolution", gen_stats["resolution"], "200-600"],
            ["s per view set (1 worker)",
             gen_stats["seconds_per_viewset"], "-"],
            ["full DB hours (32 cpu)",
             gen_stats["full_db_hours_on_32cpu"],
             f"{PAPER.generation_hours_band[0]}-"
             f"{PAPER.generation_hours_band[1]}"],
            ["compression ratio", gen_stats["compression_ratio"],
             "5-7"],
        ],
        title="Section 4.1 — database generation time",
    )
    report("text_generation", table)

    assert gen_stats["seconds_per_viewset"] > 0
    assert gen_stats["compression_ratio"] > 2.0
    # our numpy generator on one worker extrapolates to the same order of
    # magnitude as the paper's 32-CPU cluster: hours, not minutes or weeks
    if not _SMALL:
        assert 0.05 < gen_stats["full_db_hours_on_32cpu"] < 50

    # representative kernel: rendering one sample view
    from repro.lightfield import CameraLattice, LightFieldBuilder
    from repro.render.raycast import RenderSettings
    from repro.volume import neg_hip, preset

    builder = LightFieldBuilder(
        neg_hip(size=32), preset("neghip"), CameraLattice(72, 144, 6),
        resolution=RESOLUTION, workers=1,
        settings=RenderSettings(shaded=False),
    )
    cam = builder.camera_for(36, 72)
    frame = benchmark(builder.renderer._inline.render, cam)
    assert frame.shape == (RESOLUTION, RESOLUTION, 3)

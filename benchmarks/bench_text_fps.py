"""Section 4.2 text claim: >30 fps client rendering up to 500².

The paper's client is an OpenGL-free table lookup; ours is pure numpy, and
the calibration brief for this reproduction notes it "may miss the 30 fps
target" at the top resolution.  We measure all three interpolation modes and
report honestly; the shape requirement is that synthesis cost scales with
*client display* resolution (the paper's criterion (ii)), not with volume
complexity.
"""

import os

import pytest

from repro.experiments import format_table, text_fps
from repro.lightfield import CameraLattice, DictProvider, LightFieldBuilder
from repro.lightfield.synthesis import LightFieldSynthesizer
from repro.render.camera import orbit_camera
from repro.render.raycast import RenderSettings
from repro.volume import neg_hip, preset

_SMALL = os.environ.get("REPRO_SCALE", "default") == "small"
RESOLUTIONS = (64, 128) if _SMALL else (200, 300, 500)


@pytest.fixture(scope="module")
def fps_rows():
    return text_fps(resolutions=RESOLUTIONS, frames=6)


def test_text_fps(benchmark, fps_rows, report):
    table = format_table(
        headers=["res", "mode", "ms/frame", "fps", ">=30fps"],
        rows=[
            [r["resolution"], r["mode"], r["wall_clock"]["ms_per_frame"],
             r["wall_clock"]["fps"],
             "yes" if r["wall_clock"]["meets_30fps"] else "no"]
            for r in fps_rows
        ],
        title="Section 4.2 — client synthesis rate (paper claims >30 fps)",
    )
    report("text_fps", table)

    # scaling shape: frame cost grows with display resolution for a fixed
    # mode, and cheaper interpolation is faster (all host timings live
    # under the quarantined wall_clock section of each row)
    by_mode = {}
    for r in fps_rows:
        by_mode.setdefault(r["mode"], []).append(r)
    for _mode, rows in by_mode.items():
        rows.sort(key=lambda r: r["resolution"])
        assert (rows[-1]["wall_clock"]["ms_per_frame"]
                > rows[0]["wall_clock"]["ms_per_frame"])
    fastest_at_top = {
        r["mode"]: r["wall_clock"]["fps"] for r in fps_rows
        if r["resolution"] == RESOLUTIONS[-1]
    }
    assert fastest_at_top["nearest"] >= fastest_at_top["quadrilinear"]
    # the 30 fps claim must reproduce at the lowest (PDA-class) resolution
    low = [r for r in fps_rows if r["resolution"] == RESOLUTIONS[0]]
    assert any(r["wall_clock"]["meets_30fps"] for r in low)

    # representative kernel: one synthesized frame at the lowest resolution
    res = RESOLUTIONS[0]
    builder = LightFieldBuilder(
        neg_hip(size=32), preset("neghip"),
        CameraLattice(n_theta=12, n_phi=24, l=3), resolution=res,
        workers=1, settings=RenderSettings(shaded=False),
    )
    vs = builder.render_viewset((2, 3))
    synth = LightFieldSynthesizer(
        builder.lattice, builder.spheres, res, DictProvider({(2, 3): vs}),
    )
    theta, phi = builder.lattice.viewset_center((2, 3))
    cam = orbit_camera(
        theta + 0.02, phi + 0.03, radius=builder.spheres.r_outer * 2,
        resolution=res, fov_deg=builder.spheres.camera_fov_deg() * 0.5,
    )
    synth.render(cam)  # warm the atlas
    result = benchmark(synth.render, cam)
    assert result.coverage > 0.9

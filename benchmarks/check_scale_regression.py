#!/usr/bin/env python
"""Fail CI when BENCH_scale.json throughput regresses against the baseline.

``BENCH_scale.json`` is committed, so the repo always carries the last
accepted performance envelope.  The scale-bench job regenerates the file
on the runner and this script compares the *fresh* ``wall_clock``
throughput numbers against the *committed* ones (``git show
<ref>:BENCH_scale.json``), failing on any >25% events/s drop.

Only the ``wall_clock`` section is compared — the deterministic payload is
guarded by the benchmark's own assertions and by review diffs.  Keys are
matched by name (``"8/incremental"``, sharded ``"4"``); keys present on
only one side (e.g. fleet sizes that differ between ``REPRO_SCALE=small``
CI runs and full-scale committed baselines) are reported but not compared.

The threshold is deliberately loose: it is a guard against order-of-
magnitude mistakes (an accidentally quadratic path, a dead fast-path),
not a microbenchmark.  Tune per-invocation with ``--threshold`` or the
``REPRO_BENCH_TOLERANCE`` environment variable.
"""

import argparse
import json
import os
import subprocess
import sys
from typing import Dict, Optional, Tuple

ARTIFACT = "BENCH_scale.json"


def committed_baseline(ref: str) -> Optional[dict]:
    try:
        blob = subprocess.run(
            ["git", "show", f"{ref}:{ARTIFACT}"],
            capture_output=True, text=True, check=True,
        ).stdout
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None
    return json.loads(blob)


def throughputs(doc: dict) -> Dict[str, Tuple[float, float]]:
    """Flatten every (events/s, wall s) figure in the wall_clock section."""
    wall = doc.get("wall_clock", {})
    out: Dict[str, Tuple[float, float]] = {}
    for key, row in wall.get("runs", {}).items():
        out[f"run:{key}"] = (float(row["events_per_second"]),
                             float(row["wall_s"]))
    for key, row in wall.get("sharded", {}).items():
        out[f"sharded:{key}"] = (float(row["events_per_second"]),
                                 float(row["makespan_s"]))
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare fresh BENCH_scale.json throughput vs committed")
    parser.add_argument("--fresh", default=ARTIFACT,
                        help="freshly generated artifact (default: %(default)s)")
    parser.add_argument("--ref", default="HEAD",
                        help="git ref holding the baseline (default: HEAD)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.25")),
        help="max tolerated fractional events/s drop (default 0.25)")
    parser.add_argument(
        "--min-wall", type=float, default=0.2,
        help="skip runs measured in under this many wall seconds on "
             "either side — too short for a stable throughput figure "
             "(default 0.2)")
    args = parser.parse_args(argv)

    try:
        with open(args.fresh) as f:
            fresh_doc = json.load(f)
    except FileNotFoundError:
        print(f"error: {args.fresh} not found — run the scale benchmark "
              "first", file=sys.stderr)
        return 2
    base_doc = committed_baseline(args.ref)
    if base_doc is None:
        print(f"no committed {ARTIFACT} at {args.ref}; nothing to compare")
        return 0

    fresh = throughputs(fresh_doc)
    base = throughputs(base_doc)
    common = sorted(set(fresh) & set(base))
    skipped = sorted(set(fresh) ^ set(base))
    if not common:
        print("no common wall_clock keys between fresh and committed "
              "artifacts; nothing to compare")
        return 0

    regressions = []
    compared = 0
    print(f"{'key':<24} {'committed':>12} {'fresh':>12} {'ratio':>8}")
    for key in common:
        base_eps, base_wall = base[key]
        fresh_eps, fresh_wall = fresh[key]
        if min(base_wall, fresh_wall) < args.min_wall:
            print(f"{key:<24} {base_eps:>12.1f} {fresh_eps:>12.1f} "
                  f"{'—':>8}  (sub-{args.min_wall}s run, not compared)")
            continue
        compared += 1
        ratio = fresh_eps / base_eps if base_eps else float("inf")
        flag = ""
        if ratio < 1.0 - args.threshold:
            regressions.append(key)
            flag = "  << REGRESSION"
        print(f"{key:<24} {base_eps:>12.1f} {fresh_eps:>12.1f} "
              f"{ratio:>7.2f}x{flag}")
    if skipped:
        print(f"(skipped {len(skipped)} keys present on one side only: "
              f"{', '.join(skipped)})")

    if regressions:
        print(f"\nFAIL: {len(regressions)} throughput regression(s) beyond "
              f"{args.threshold:.0%}: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    print(f"\nOK: no events/s drop beyond {args.threshold:.0%} across "
          f"{compared} compared runs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Back-compat shim: the scale-curve preset of ``check_regression.py``.

The original scale-only checker grew into the generic
:mod:`benchmarks.check_regression` (any ``BENCH_*.json``, selectable
wall_clock figures, either regression direction).  This entry point keeps
the old CLI — ``--fresh/--ref/--threshold/--min-wall`` — and delegates
with the preset that reproduces the historical behavior: guard every
``events_per_second`` figure of ``BENCH_scale.json`` (scaling runs, the
sharded curve, the cross-shard-fraction tiers and the contended
admission arms), higher-is-better, sub-``--min-wall`` runs skipped.
"""

import argparse
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from check_regression import main as check_main  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare fresh BENCH_scale.json throughput vs committed")
    parser.add_argument("--fresh", default="BENCH_scale.json",
                        help="freshly generated artifact "
                             "(default: %(default)s)")
    parser.add_argument("--ref", default="HEAD",
                        help="git ref holding the baseline (default: HEAD)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.25")),
        help="max tolerated fractional events/s drop (default 0.25)")
    parser.add_argument(
        "--min-wall", type=float, default=0.2,
        help="skip runs measured in under this many wall seconds on "
             "either side (default 0.2)")
    args = parser.parse_args(argv)
    return check_main([
        args.fresh,
        "--ref", args.ref,
        "--select", "runs.*.events_per_second",
        "--select", "sharded.*.events_per_second",
        "--select", "cross_shard.*.events_per_second",
        "--select", "contended.*.events_per_second",
        "--direction", "higher",
        "--threshold", str(args.threshold),
        "--min-wall", str(args.min_wall),
    ])


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 11: client latency per view-set access at 500², Cases 1-3.

Paper shape: the 500² initial phase is dramatically longer (33 of 58
accesses) because staging the larger view sets cannot outrun the cursor;
during that phase Case 3's latency is WAN-comparable (staging contends with
foreground fetches — the Section 4.3 observation), after it the WAN
disappears from the access stream.
"""

import os

from bench_fig09_latency_200 import _assert_paper_shape, _report_latency
from repro.experiments import experiment_resolutions

_SMALL = os.environ.get("REPRO_SCALE", "default") == "small"


def test_fig11_latency_500(benchmark, suite, report):
    res_all = experiment_resolutions()
    resolution = res_all[2]
    _report_latency(suite, resolution, report, "fig11_latency_500")
    m1, m2, m3 = _assert_paper_shape(suite, resolution)
    # the top-resolution initial phase must be much longer than at the
    # lowest resolution (paper: 33 accesses vs 1); at smoke scale the
    # payloads are too small for the contrast to appear
    low = suite.run(3, res_all[0]).initial_phase_length()
    high = m3.initial_phase_length()
    if _SMALL:
        assert high >= low
    else:
        assert high > low
        assert high >= 5

    result = benchmark.pedantic(
        lambda: suite.run(3, resolution, trace_seed=13),
        rounds=1, iterations=1,
    )
    assert len(result.accesses) > 0

"""Simulation-core scaling benchmark: N clients, three rebalancers, shards.

The multi-client harness is where the O(flows × links) full recompute stops
being affordable: every flow arrival/departure/pause re-rates *every* flow
and reschedules *every* completion event, so session cost grows
quadratically with client count.  The incremental rebalancer bounds each
trigger to the affected link/flow component, coalesces same-instant
triggers, epsilon-gates event rescheduling, vectorizes large water-filling
passes — and, in the window-capped steady state this workload lives in,
skips the flush entirely (``fast_rated``).  The batched rebalancer layers
the array-dispatch flush on top (bit-identical event stream to
incremental, checked by ``repro.analysis determinism``).

The three regimes — **scaling** (fleet-size ladder × three arms),
**contended** (a thin 40 Mb/s WAN with big windows, lighting up the
flush/coalesce/vectorize machinery) and **sharded** (the fleet partitioned
into independent depot groups) — are declared as points of the builtin
``scale`` sweep spec; this file executes that spec through the sweep
engine (sequentially, so the quarantined per-run wall clocks stay honest)
and asserts on the merged ``BENCH_scale.json``:

* the arms are *equivalent*: same per-client access counts (allocation
  equality to 1e-9 is covered by ``tests/lon/test_network_properties.py``,
  bit-equality of event streams by the determinism suite);
* incremental and batched are never slower than full recompute, and at
  the largest N of a full-scale run incremental is >= 3x faster;
* the contended regime exercises the vectorized, coalesced, and batched
  flush paths (all counters > 0);
* the sharded curve reaches 100k events/s — or, on hosts too slow for
  the absolute bar, >= 3x the single-shard throughput — at >= 4 shards.

Deterministic counters live in the payload; host timings live under
``wall_clock`` (CI guards the throughput keys against >25% regressions).

Run ``python benchmarks/bench_text_multiclient.py --profile`` for a
cProfile breakdown (top cumulative functions) of the largest
single-process run.
"""

import os

from repro.experiments import run_sweep, spec_named

_SMALL = os.environ.get("REPRO_SCALE", "default") == "small"


def test_multiclient_scaling(report):
    result = run_sweep(spec_named("scale"), workers=1)
    doc = result.doc
    wall = doc["wall_clock"]
    print(f"wrote {result.artifact_path}")

    scaling = [r for r in result.rows if r["regime"] == "scaling"]
    contended = {
        (f"full/{r['admission']}" if r["rebalance"] == "full"
         else r["rebalance"]): r
        for r in result.rows if r["regime"] == "contended"
    }
    sharded = [r for r in result.rows if r["regime"] == "sharded"]
    cross = {str(r["cross_fraction"]): r for r in result.rows
             if r["regime"] == "cross_shard"}
    client_counts = doc["client_counts"]
    arms = ("incremental", "batched", "full")
    n_max = client_counts[-1]
    by_key = {(r["n_clients"], r["rebalance"]): r for r in scaling}
    wall_runs = wall["runs"]

    # --- report ----------------------------------------------------------
    lines = [
        f"Multi-client scaling (case 3, {'small' if _SMALL else 'full'} "
        f"scale, {len(client_counts)} fleet sizes x {len(arms)} rebalance "
        "arms)",
        f"{'N':>4} {'arm':<12} {'wall s':>9} {'events':>9} "
        f"{'events/s':>10} {'speedup':>8}",
    ]
    for n in client_counts:
        for arm in arms:
            r = by_key[(n, arm)]
            w = wall_runs[f"{n}/{arm}"]
            speedup = (wall["speedups"][str(n)] if arm == "incremental"
                       else 1.0)
            lines.append(
                f"{n:>4} {arm:<12} {w['wall_s']:>9.4f} "
                f"{r['events_fired']:>9} "
                f"{w['events_per_second']:>10.0f} "
                f"{speedup:>7.2f}x"
            )
    lines.append("")
    lines.append(f"Contended regime ({doc['contended']['n_clients']} "
                 "clients, 40 Mb/s WAN, 256 KiB windows, 2 KiB blocks):")
    contended_runs = doc["contended"]["runs"]
    contended_walls = wall["contended"]
    for key, st in contended_runs.items():
        w = contended_walls[key]
        lines.append(
            f"  {key:<12} wall={w['wall_s']:.4f}s "
            f"ev/s={w['events_per_second']:.0f} "
            f"recomputes={st['recomputes']} "
            f"full={st['full_recomputes']} "
            f"vectorized={st['vectorized']} coalesced={st['coalesced']} "
            f"adm_batches={st['admission_batches_flushed']} "
            f"adm_coalesced={st['admission_submissions_coalesced']} "
            f"adm_scalar={st['admission_scalar_fallbacks']}"
        )
    lines.append(f"  admission batching speedup (full/off -> full/on): "
                 f"{wall['admission_speedup']:.2f}x")
    lines.append("")
    if "cross_shard" in doc:
        xs = doc["cross_shard"]
        lines.append(
            f"Cross-shard traffic ({xs['n_clients']} clients, "
            f"{xs['n_shards']} shards, backbone boundary link):")
        lines.append(f"{'frac':>6} {'events':>9} {'events/s':>10} "
                     f"{'windows':>8} {'oversub':>8}")
        for frac in map(str, xs["fractions"]):
            r = xs["runs"][frac]
            w = wall["cross_shard"][frac]
            lines.append(
                f"{frac:>6} {r['events_fired']:>9} "
                f"{w['events_per_second']:>10.0f} "
                f"{r.get('boundary_windows', 0):>8} "
                f"{r.get('boundary_max_oversubscription', 0.0):>8.3f}"
            )
        lines.append("")
    lines.append(f"Sharded fleet ({n_max} clients, batched arm, "
                 "sequential workers):")
    lines.append(f"{'S':>4} {'events':>9} {'makespan s':>11} {'cpu s':>8} "
                 f"{'events/s':>10} {'ev/s-core':>10}")
    for row in sharded:
        w = wall["sharded"][str(row["n_shards"])]
        lines.append(
            f"{row['n_shards']:>4} {row['events_fired']:>9} "
            f"{w['makespan_s']:>11.4f} {w['cpu_s']:>8.3f} "
            f"{w['events_per_second']:>10.0f} "
            f"{w['events_per_core_second']:>10.0f}"
        )
    report("multiclient_scaling", "\n".join(lines))

    # --- assertions -------------------------------------------------------
    for n in client_counts:
        inc = by_key[(n, "incremental")]
        bat = by_key[(n, "batched")]
        full = by_key[(n, "full")]
        # equivalence: all three arms deliver every access for every client
        assert inc["accesses"] == bat["accesses"] == full["accesses"]
        assert inc["per_client_accesses"] == bat["per_client_accesses"] \
            == full["per_client_accesses"]
        # the incremental arms actually ran incrementally: no whole-network
        # recomputes, every trigger either flushed a dirty component or was
        # absorbed outright by the quiet-link fast path
        for arm_row in (inc, bat):
            assert arm_row["full_recomputes"] == 0
            assert arm_row["recomputes"] + arm_row["fast_rated"] > 0
        # the batched arm really dispatched through the array flush
        assert bat["batched_flushes"] == bat["recomputes"]
        assert full["recomputes"] == 0
        assert full["full_recomputes"] > 0

    # contended regime proves the optimized paths are live, not dead code
    for arm in ("incremental", "batched"):
        st = contended[arm]
        assert st["vectorized"] > 0, f"{arm}: vectorized water-fill is dead"
        assert st["coalesced"] > 0, f"{arm}: trigger coalescing is dead"
        # the admission plan formed real batches (satellite: the
        # vectorized submission path is live in the contended regime)
        assert st["admission_batches_flushed"] > 0, (
            f"{arm}: admission batching is dead")
        assert st["admission_submissions_coalesced"] > 0
    assert contended["batched"]["batched_flushes"] > 0
    assert contended["batched"]["batch_flows"] > 0
    assert (contended["incremental"]["per_client_accesses"]
            == contended["batched"]["per_client_accesses"])

    # admission batching A/B under the full recompute: same deliveries,
    # same event stream size, and the off arm really ran scalar
    adm_on, adm_off = contended["full/on"], contended["full/off"]
    assert adm_on["accesses"] == adm_off["accesses"]
    assert adm_on["events_fired"] == adm_off["events_fired"]
    assert adm_on["per_client_accesses"] == adm_off["per_client_accesses"]
    assert adm_on["admission_batches_flushed"] > 0
    assert adm_off["admission_batches_flushed"] == 0
    assert adm_off["admission_scalar_fallbacks"] > 0
    # coalescing the per-submission recomputes is the measured win
    assert adm_on["full_recomputes"] < adm_off["full_recomputes"]
    min_speedup = 1.2 if _SMALL else 1.3
    assert wall["admission_speedup"] >= min_speedup, (
        f"admission batching speedup {wall['admission_speedup']:.2f}x "
        f"< {min_speedup}x in the contended full-recompute regime")

    # cross-shard axis: every fraction still delivers the whole workload;
    # crossing fractions exchanged boundary loads at the barrier
    if cross:
        for frac, row in cross.items():
            assert row["accesses"] == by_key[(n_max, "batched")]["accesses"]
            if float(frac) > 0.0:
                assert row.get("boundary_windows", 0) > 0, (
                    f"{frac}: boundary exchange never ran")
                assert row["boundary_staleness_bound"] > 0.0
            else:
                assert "boundary_windows" not in row

    # sharding preserves the workload (every access delivered) ...
    for row in sharded:
        assert row["accesses"] == by_key[(n_max, "batched")]["accesses"]

    # perf: incremental/batched must never lose to the full recompute
    # (10% + 50 ms noise allowance at the tiny end where both are
    # sub-second)
    for n in client_counts:
        full_wall = wall_runs[f"{n}/full"]["wall_s"]
        for arm in ("incremental", "batched"):
            w = wall_runs[f"{n}/{arm}"]["wall_s"]
            assert w <= full_wall * 1.10 + 0.05, (
                f"{arm} slower than full at N={n}: "
                f"{w:.4f}s vs {full_wall:.4f}s"
            )
    if not _SMALL:
        assert wall["speedup_at_max"] >= 3.0, (
            f"incremental speedup at N={n_max} is "
            f"{wall['speedup_at_max']:.2f}x, expected >= 3x"
        )
        # ... and scales throughput: at >= 4 shards the fleet clears 100k
        # events/s, or on hosts too slow for the absolute bar, >= 3x the
        # single-shard rate
        shard_eps = wall["sharded"]
        base_eps = shard_eps["1"]["events_per_second"]
        best_eps = max(v["events_per_second"]
                       for s, v in shard_eps.items() if int(s) >= 4)
        assert best_eps >= 100_000 or best_eps >= 3.0 * base_eps, (
            f"sharded throughput peaked at {best_eps:.0f} events/s "
            f"(single-shard {base_eps:.0f}); expected >= 100k or >= 3x"
        )


def _profile_main(argv=None):
    """``--profile``: cProfile the largest single-process scaling run."""
    import argparse
    import cProfile
    import pstats

    from repro.experiments.scenarios import _scale_config, _scale_source
    from repro.streaming import run_multiclient_session

    counts = [1, 4, 8] if _SMALL else [1, 8, 32, 64]
    parser = argparse.ArgumentParser(
        description="profile the multi-client scaling workload")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print hot functions")
    parser.add_argument("--top", type=int, default=25,
                        help="rows of the cumulative-time table to print")
    parser.add_argument("--clients", type=int, default=counts[-1])
    parser.add_argument("--rebalance", default="incremental",
                        choices=["incremental", "batched", "full"])
    parser.add_argument("--regime", default="scaling",
                        choices=["scaling", "contended"])
    parser.add_argument("--admission", default="on", choices=["on", "off"],
                        help="vectorized admission batching arm")
    args = parser.parse_args(argv)
    if not args.profile:
        parser.error("this entry point only supports --profile; "
                     "run the benchmark itself via pytest")

    source = _scale_source()
    config = _scale_config(args.regime, args.clients, args.rebalance,
                           seed=7, admission=args.admission)
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_multiclient_session(source, config)
    profiler.disable()
    adm = result.admission
    print(f"{args.clients} clients / {args.regime} / {args.rebalance} / "
          f"admission={args.admission}: "
          f"{result.events_fired} events in {result.wall_seconds:.3f}s "
          f"({result.events_per_second:.0f} events/s)")
    print(f"admission: batches_flushed={adm['batches_flushed']} "
          f"submissions_coalesced={adm['submissions_coalesced']} "
          f"scalar_fallbacks={adm['scalar_fallbacks']}\n")
    stats = pstats.Stats(profiler)
    stats.strip_dirs().sort_stats("cumulative").print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(_profile_main())

"""Simulation-core scaling benchmark: N concurrent clients, two rebalancers.

The multi-client harness is where the O(flows × links) full recompute stops
being affordable: every flow arrival/departure/pause re-rates *every* flow
and reschedules *every* completion event, so session cost grows
quadratically with client count.  The incremental rebalancer bounds each
trigger to the affected link/flow component, coalesces same-instant
triggers, epsilon-gates event rescheduling, vectorizes large water-filling
passes — and, in the window-capped steady state this workload lives in,
skips the flush entirely: when every link on a flow's path keeps headroom
for the sum of its members' TCP-window ceilings, admitting or retiring the
flow pins it at its own ceiling and re-rates nobody (``fast_rated``).

The workload is a 64-client browsing fleet staging 256 KiB blocks through
an 8 KiB-window WAN (long flows, high concurrency): the full arm pays a
whole-network water-fill for each of its ~30k triggers while the
incremental arm answers almost all of them with an O(path) headroom check.

This benchmark runs identical N-client sessions under both arms for
N ∈ {1, 8, 32, 64} (reduced under ``REPRO_SCALE=small``), records wall
time and simulation throughput (events fired per wall second) in
``BENCH_scale.json``, and asserts:

* the arms are *equivalent*: same per-client access counts (the allocation
  itself is checked to 1e-9 by the property tests in
  ``tests/lon/test_network_properties.py``);
* incremental is never slower than full recompute;
* at the largest N of a full-scale run, incremental is >= 3x faster.
"""

import os

from repro.analysis.determinism import MODELED_CPU_SECONDS_PER_BYTE
from repro.lightfield import CameraLattice, SyntheticSource
from repro.lon import gbps, mbps
from repro.streaming import (
    MultiClientConfig,
    SessionConfig,
    run_multiclient_session,
)

_SMALL = os.environ.get("REPRO_SCALE", "default") == "small"
CLIENT_COUNTS = [1, 4, 8] if _SMALL else [1, 8, 32, 64]
ARMS = ("incremental", "full")


def _run(n_clients: int, rebalance: str, source):
    config = MultiClientConfig(
        base=SessionConfig(
            case=3,
            n_accesses=8 if _SMALL else 15,
            wan_bandwidth=gbps(2.0),
            wan_latency=0.08,
            depot_access_bandwidth=mbps(400.0),
            tcp_window=8 * 1024,
            block_size=256 * 1024,
            cpu_seconds_per_byte=MODELED_CPU_SECONDS_PER_BYTE,
            staging_concurrency=16,
            staging_streams=4,
            prefetch_policy="all-neighbors",
            network_rebalance=rebalance,
        ),
        n_clients=n_clients,
        seed_stride=101,
        start_stagger=0.25,
    )
    return run_multiclient_session(source, config)


def test_multiclient_scaling(report, bench_json):
    if _SMALL:
        lattice = CameraLattice(n_theta=9, n_phi=18, l=3)
        source = SyntheticSource(lattice, resolution=48)
    else:
        lattice = CameraLattice(n_theta=30, n_phi=60, l=3)
        source = SyntheticSource(lattice, resolution=64)

    rows = []
    by_key = {}
    for n in CLIENT_COUNTS:
        for arm in ARMS:
            result = _run(n, arm, source)
            agg = result.aggregate()
            by_key[(n, arm)] = (result, agg)
            rows.append({
                "n_clients": n,
                "rebalance": arm,
                "events_fired": result.events_fired,
                "sim_s": round(result.sim_seconds, 2),
                "accesses": agg["accesses"],
                "mean_latency_s": agg["mean_latency"],
                "recomputes": agg["rebalance_recomputes"],
                "full_recomputes": agg["rebalance_full_recomputes"],
                "coalesced": agg["rebalance_coalesced"],
                "vectorized": agg["rebalance_vectorized"],
                "fast_rated": result.rebalance["fast_rated"],
                "all_capped": result.rebalance["all_capped"],
                "queue_compactions": agg["queue_compactions"],
            })

    lines = [
        f"Multi-client scaling (case 3, {'small' if _SMALL else 'full'} "
        f"scale, {len(CLIENT_COUNTS)} fleet sizes x 2 rebalance arms)",
        f"{'N':>4} {'arm':<12} {'wall s':>9} {'events':>9} "
        f"{'events/s':>10} {'speedup':>8}",
    ]
    speedups = {}
    for n in CLIENT_COUNTS:
        full_wall = by_key[(n, "full")][0].wall_seconds
        for arm in ARMS:
            result, _ = by_key[(n, arm)]
            speedup = (full_wall / result.wall_seconds
                       if arm == "incremental" and result.wall_seconds else 1.0)
            if arm == "incremental":
                speedups[n] = speedup
            lines.append(
                f"{n:>4} {arm:<12} {result.wall_seconds:>9.4f} "
                f"{result.events_fired:>9} "
                f"{result.events_per_second:>10.0f} "
                f"{speedup:>7.2f}x"
            )
    report("multiclient_scaling", "\n".join(lines))

    n_max = CLIENT_COUNTS[-1]
    bench_json("scale", {
        "benchmark": "multiclient_scaling",
        "case": 3,
        "client_counts": CLIENT_COUNTS,
        "runs": rows,
    }, wall_clock={
        "runs": {f"{n}/{arm}": {
            "wall_s": round(r.wall_seconds, 4),
            "events_per_second": round(r.events_per_second, 1),
        } for (n, arm), (r, _) in sorted(by_key.items())},
        "speedup_at_max": round(speedups[n_max], 2),
        "speedups": {str(n): round(s, 2) for n, s in speedups.items()},
    })

    for n in CLIENT_COUNTS:
        inc, inc_agg = by_key[(n, "incremental")]
        full, full_agg = by_key[(n, "full")]
        # equivalence: both arms deliver every access for every client
        assert inc_agg["accesses"] == full_agg["accesses"]
        assert [len(m.accesses) for m in inc.per_client] == \
               [len(m.accesses) for m in full.per_client]
        # the incremental arm actually ran incrementally: no whole-network
        # recomputes, every trigger either flushed a dirty component or was
        # absorbed outright by the quiet-link fast path
        assert inc.rebalance["full_recomputes"] == 0
        assert inc.rebalance["recomputes"] + inc.rebalance["fast_rated"] > 0
        assert full.rebalance["recomputes"] == 0
        assert full.rebalance["full_recomputes"] > 0

    # perf: incremental must never lose to the full recompute (10% + 50 ms
    # noise allowance at the tiny end where both are sub-second)
    for n in CLIENT_COUNTS:
        inc_wall = by_key[(n, "incremental")][0].wall_seconds
        full_wall = by_key[(n, "full")][0].wall_seconds
        assert inc_wall <= full_wall * 1.10 + 0.05, (
            f"incremental slower than full at N={n}: "
            f"{inc_wall:.4f}s vs {full_wall:.4f}s"
        )
    if not _SMALL:
        assert speedups[n_max] >= 3.0, (
            f"incremental speedup at N={n_max} is {speedups[n_max]:.2f}x, "
            "expected >= 3x"
        )

"""Simulation-core scaling benchmark: N clients, three rebalancers, shards.

The multi-client harness is where the O(flows × links) full recompute stops
being affordable: every flow arrival/departure/pause re-rates *every* flow
and reschedules *every* completion event, so session cost grows
quadratically with client count.  The incremental rebalancer bounds each
trigger to the affected link/flow component, coalesces same-instant
triggers, epsilon-gates event rescheduling, vectorizes large water-filling
passes — and, in the window-capped steady state this workload lives in,
skips the flush entirely: when every link on a flow's path keeps headroom
for the sum of its members' TCP-window ceilings, admitting or retiring the
flow pins it at its own ceiling and re-rates nobody (``fast_rated``).
The batched rebalancer layers the array-dispatch flush on top: one numpy
pass settles, re-rates, epsilon-gates, and reschedules the whole coalesced
flow set (bit-identical event stream to incremental, checked by
``repro.analysis determinism``).

Three regimes are measured:

* **scaling** — a 64-client browsing fleet staging 256 KiB blocks through
  an 8 KiB-window WAN (long flows, high concurrency): the full arm pays a
  whole-network water-fill for each of its ~30k triggers while the
  incremental/batched arms answer almost all of them with an O(path)
  headroom check.  Run for N ∈ {1, 8, 32, 64} × three arms.
* **contended** — the same fleet squeezed through a 40 Mb/s WAN with
  256 KiB windows, so the quiet-link fast path cannot absorb triggers:
  real component flushes, same-instant coalescing, and (with the
  vectorize threshold at 12) numpy water-fills all fire, proving the
  ``vectorized``/``coalesced``/``batched_flushes`` paths are live.
* **sharded** — the fleet partitioned into S ∈ {1, 2, 4, 8} independent
  depot groups (``repro.lon.shard``), one rig per shard.  Events/s is
  total events over the parallel makespan (slowest shard); events/s-core
  divides by summed per-shard CPU so the curve stays honest on any host.

Results land in ``BENCH_scale.json`` (deterministic counters in the
payload, host timings under ``wall_clock``; CI guards the ``wall_clock``
throughput against >25% regressions).  Assertions:

* the arms are *equivalent*: same per-client access counts (allocation
  equality to 1e-9 is covered by ``tests/lon/test_network_properties.py``,
  bit-equality of event streams by the determinism suite);
* incremental and batched are never slower than full recompute, and at
  the largest N of a full-scale run incremental is >= 3x faster;
* the contended regime exercises the vectorized, coalesced, and batched
  flush paths (all counters > 0);
* the sharded curve reaches 100k events/s — or, on hosts too slow for
  the absolute bar, >= 3x the single-shard throughput — at >= 4 shards.

Run ``python benchmarks/bench_text_multiclient.py --profile`` for a
cProfile breakdown (top cumulative functions) of the largest
single-process run.
"""

import os

from repro.analysis.determinism import MODELED_CPU_SECONDS_PER_BYTE
from repro.lightfield import CameraLattice, SyntheticSource
from repro.lon import gbps, mbps
from repro.lon.shard import run_sharded_session
from repro.streaming import (
    MultiClientConfig,
    SessionConfig,
    run_multiclient_session,
)

_SMALL = os.environ.get("REPRO_SCALE", "default") == "small"
CLIENT_COUNTS = [1, 4, 8] if _SMALL else [1, 8, 32, 64]
SHARD_COUNTS = [1, 2] if _SMALL else [1, 2, 4, 8]
CONTENDED_CLIENTS = 8 if _SMALL else 64
ARMS = ("incremental", "batched", "full")


def _source():
    if _SMALL:
        return SyntheticSource(CameraLattice(n_theta=9, n_phi=18, l=3),
                               resolution=48)
    return SyntheticSource(CameraLattice(n_theta=30, n_phi=60, l=3),
                           resolution=64)


def _scaling_config(n_clients: int, rebalance: str) -> MultiClientConfig:
    """Window-capped steady state: the quiet fast path dominates."""
    return MultiClientConfig(
        base=SessionConfig(
            case=3,
            n_accesses=8 if _SMALL else 15,
            wan_bandwidth=gbps(2.0),
            wan_latency=0.08,
            depot_access_bandwidth=mbps(400.0),
            tcp_window=8 * 1024,
            block_size=256 * 1024,
            cpu_seconds_per_byte=MODELED_CPU_SECONDS_PER_BYTE,
            staging_concurrency=16,
            staging_streams=4,
            prefetch_policy="all-neighbors",
            network_rebalance=rebalance,
        ),
        n_clients=n_clients,
        seed_stride=101,
        start_stagger=0.25,
    )


def _contended_config(n_clients: int, rebalance: str) -> MultiClientConfig:
    """Bandwidth-scarce regime: every trigger reaches the flush machinery.

    Big windows over a thin WAN defeat the all-capped/quiet fast paths, so
    components really flush (``recomputes``), same-instant triggers really
    coalesce, and — with the vectorize threshold lowered to the observed
    component sizes — the numpy water-fill really runs.
    """
    return MultiClientConfig(
        base=SessionConfig(
            case=3,
            n_accesses=8,
            wan_bandwidth=mbps(40.0),
            wan_latency=0.08,
            depot_access_bandwidth=mbps(50.0),
            tcp_window=256 * 1024,
            block_size=256 * 1024,
            cpu_seconds_per_byte=MODELED_CPU_SECONDS_PER_BYTE,
            staging_concurrency=24,
            staging_streams=6,
            prefetch_policy="all-neighbors",
            network_rebalance=rebalance,
            network_vectorize_threshold=12,
        ),
        n_clients=n_clients,
        seed_stride=101,
        start_stagger=0.25,
    )


def test_multiclient_scaling(report, bench_json):
    source = _source()

    # --- scaling: three arms across the fleet-size ladder ---------------
    rows = []
    by_key = {}
    for n in CLIENT_COUNTS:
        for arm in ARMS:
            result = run_multiclient_session(source, _scaling_config(n, arm))
            agg = result.aggregate()
            by_key[(n, arm)] = (result, agg)
            rows.append({
                "n_clients": n,
                "rebalance": arm,
                "events_fired": result.events_fired,
                "sim_s": round(result.sim_seconds, 2),
                "accesses": agg["accesses"],
                "mean_latency_s": agg["mean_latency"],
                "recomputes": agg["rebalance_recomputes"],
                "full_recomputes": agg["rebalance_full_recomputes"],
                "coalesced": agg["rebalance_coalesced"],
                "vectorized": agg["rebalance_vectorized"],
                "batched_flushes": result.rebalance["batched_flushes"],
                "batch_flows": result.rebalance["batch_flows"],
                "fast_rated": result.rebalance["fast_rated"],
                "all_capped": result.rebalance["all_capped"],
                "queue_compactions": agg["queue_compactions"],
            })

    # --- contended: light up the flush/coalesce/vectorize machinery -----
    contended = {}
    for arm in ("incremental", "batched"):
        result = run_multiclient_session(
            source, _contended_config(CONTENDED_CLIENTS, arm))
        contended[arm] = result

    # --- sharded: events/s vs shard count at the largest fleet ----------
    n_max = CLIENT_COUNTS[-1]
    shard_rows = []
    for s in SHARD_COUNTS:
        sharded = run_sharded_session(
            source, _scaling_config(n_max, "batched"),
            n_shards=s, workers=1,
        )
        shard_rows.append({
            "n_shards": s,
            "events_fired": sharded.events_fired,
            "makespan_s": sharded.wall_seconds,
            "cpu_s": sharded.cpu_seconds,
            "events_per_second": sharded.events_per_second,
            "events_per_core_second":
                sharded.events_fired / sharded.cpu_seconds,
            "accesses": sharded.aggregate()["accesses"],
        })

    # --- report ----------------------------------------------------------
    lines = [
        f"Multi-client scaling (case 3, {'small' if _SMALL else 'full'} "
        f"scale, {len(CLIENT_COUNTS)} fleet sizes x {len(ARMS)} rebalance "
        "arms)",
        f"{'N':>4} {'arm':<12} {'wall s':>9} {'events':>9} "
        f"{'events/s':>10} {'speedup':>8}",
    ]
    speedups = {}
    for n in CLIENT_COUNTS:
        full_wall = by_key[(n, "full")][0].wall_seconds
        for arm in ARMS:
            result, _ = by_key[(n, arm)]
            speedup = (full_wall / result.wall_seconds
                       if arm != "full" and result.wall_seconds else 1.0)
            if arm == "incremental":
                speedups[n] = speedup
            lines.append(
                f"{n:>4} {arm:<12} {result.wall_seconds:>9.4f} "
                f"{result.events_fired:>9} "
                f"{result.events_per_second:>10.0f} "
                f"{speedup:>7.2f}x"
            )
    lines.append("")
    lines.append(f"Contended regime ({CONTENDED_CLIENTS} clients, 40 Mb/s "
                 "WAN, 256 KiB windows):")
    for arm, result in contended.items():
        st = result.rebalance
        lines.append(
            f"  {arm:<12} recomputes={st['recomputes']} "
            f"vectorized={st['vectorized']} coalesced={st['coalesced']} "
            f"batched_flushes={st['batched_flushes']} "
            f"batch_flows={st['batch_flows']}"
        )
    lines.append("")
    lines.append(f"Sharded fleet ({n_max} clients, batched arm, "
                 "sequential workers):")
    lines.append(f"{'S':>4} {'events':>9} {'makespan s':>11} {'cpu s':>8} "
                 f"{'events/s':>10} {'ev/s-core':>10}")
    for row in shard_rows:
        lines.append(
            f"{row['n_shards']:>4} {row['events_fired']:>9} "
            f"{row['makespan_s']:>11.4f} {row['cpu_s']:>8.3f} "
            f"{row['events_per_second']:>10.0f} "
            f"{row['events_per_core_second']:>10.0f}"
        )
    report("multiclient_scaling", "\n".join(lines))

    # --- artifact ---------------------------------------------------------
    bench_json("scale", {
        "benchmark": "multiclient_scaling",
        "case": 3,
        "client_counts": CLIENT_COUNTS,
        "runs": rows,
        "contended": {
            "n_clients": CONTENDED_CLIENTS,
            "runs": {arm: {
                "accesses": r.aggregate()["accesses"],
                "events_fired": r.events_fired,
                "recomputes": r.rebalance["recomputes"],
                "vectorized": r.rebalance["vectorized"],
                "coalesced": r.rebalance["coalesced"],
                "batched_flushes": r.rebalance["batched_flushes"],
                "batch_flows": r.rebalance["batch_flows"],
            } for arm, r in contended.items()},
        },
        "sharded": {
            "n_clients": n_max,
            "shard_counts": SHARD_COUNTS,
            "events_fired": {str(r["n_shards"]): r["events_fired"]
                             for r in shard_rows},
        },
    }, wall_clock={
        "runs": {f"{n}/{arm}": {
            "wall_s": round(r.wall_seconds, 4),
            "events_per_second": round(r.events_per_second, 1),
        } for (n, arm), (r, _) in sorted(by_key.items())},
        "speedup_at_max": round(speedups[n_max], 2),
        "speedups": {str(n): round(s, 2) for n, s in speedups.items()},
        "sharded": {str(r["n_shards"]): {
            "makespan_s": round(r["makespan_s"], 4),
            "cpu_s": round(r["cpu_s"], 4),
            "events_per_second": round(r["events_per_second"], 1),
            "events_per_core_second":
                round(r["events_per_core_second"], 1),
        } for r in shard_rows},
    })

    # --- assertions -------------------------------------------------------
    for n in CLIENT_COUNTS:
        inc, inc_agg = by_key[(n, "incremental")]
        bat, bat_agg = by_key[(n, "batched")]
        full, full_agg = by_key[(n, "full")]
        # equivalence: all three arms deliver every access for every client
        assert inc_agg["accesses"] == bat_agg["accesses"] \
            == full_agg["accesses"]
        assert [len(m.accesses) for m in inc.per_client] == \
               [len(m.accesses) for m in bat.per_client] == \
               [len(m.accesses) for m in full.per_client]
        # the incremental arms actually ran incrementally: no whole-network
        # recomputes, every trigger either flushed a dirty component or was
        # absorbed outright by the quiet-link fast path
        for arm_result in (inc, bat):
            assert arm_result.rebalance["full_recomputes"] == 0
            assert arm_result.rebalance["recomputes"] \
                + arm_result.rebalance["fast_rated"] > 0
        # the batched arm really dispatched through the array flush
        assert bat.rebalance["batched_flushes"] == bat.rebalance["recomputes"]
        assert full.rebalance["recomputes"] == 0
        assert full.rebalance["full_recomputes"] > 0

    # contended regime proves the optimized paths are live, not dead code
    for arm, result in contended.items():
        st = result.rebalance
        assert st["vectorized"] > 0, f"{arm}: vectorized water-fill is dead"
        assert st["coalesced"] > 0, f"{arm}: trigger coalescing is dead"
    assert contended["batched"].rebalance["batched_flushes"] > 0
    assert contended["batched"].rebalance["batch_flows"] > 0
    assert [len(m.accesses) for m in contended["incremental"].per_client] \
        == [len(m.accesses) for m in contended["batched"].per_client]

    # sharding preserves the workload (every access delivered) ...
    for row in shard_rows:
        assert row["accesses"] == by_key[(n_max, "batched")][1]["accesses"]

    # perf: incremental/batched must never lose to the full recompute
    # (10% + 50 ms noise allowance at the tiny end where both are
    # sub-second)
    for n in CLIENT_COUNTS:
        full_wall = by_key[(n, "full")][0].wall_seconds
        for arm in ("incremental", "batched"):
            wall = by_key[(n, arm)][0].wall_seconds
            assert wall <= full_wall * 1.10 + 0.05, (
                f"{arm} slower than full at N={n}: "
                f"{wall:.4f}s vs {full_wall:.4f}s"
            )
    if not _SMALL:
        assert speedups[n_max] >= 3.0, (
            f"incremental speedup at N={n_max} is {speedups[n_max]:.2f}x, "
            "expected >= 3x"
        )
        # ... and scales throughput: at >= 4 shards the fleet clears 100k
        # events/s, or on hosts too slow for the absolute bar, >= 3x the
        # single-shard rate
        base_eps = shard_rows[0]["events_per_second"]
        best_eps = max(r["events_per_second"]
                       for r in shard_rows if r["n_shards"] >= 4)
        assert best_eps >= 100_000 or best_eps >= 3.0 * base_eps, (
            f"sharded throughput peaked at {best_eps:.0f} events/s "
            f"(single-shard {base_eps:.0f}); expected >= 100k or >= 3x"
        )


def _profile_main(argv=None):
    """``--profile``: cProfile the largest single-process scaling run."""
    import argparse
    import cProfile
    import pstats

    parser = argparse.ArgumentParser(
        description="profile the multi-client scaling workload")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print hot functions")
    parser.add_argument("--top", type=int, default=25,
                        help="rows of the cumulative-time table to print")
    parser.add_argument("--clients", type=int, default=CLIENT_COUNTS[-1])
    parser.add_argument("--rebalance", default="incremental",
                        choices=list(ARMS))
    args = parser.parse_args(argv)
    if not args.profile:
        parser.error("this entry point only supports --profile; "
                     "run the benchmark itself via pytest")

    source = _source()
    config = _scaling_config(args.clients, args.rebalance)
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_multiclient_session(source, config)
    profiler.disable()
    print(f"{args.clients} clients / {args.rebalance}: "
          f"{result.events_fired} events in {result.wall_seconds:.3f}s "
          f"({result.events_per_second:.0f} events/s)\n")
    stats = pstats.Stats(profiler)
    stats.strip_dirs().sort_stats("cumulative").print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(_profile_main())

"""Figure 8: per-access view-set decompression time over the 58-access trace.

Paper: decompression stays sub-second below 400² (PDA-friendly) and climbs
toward ~1.8 s at 500² on 2003 hardware.  We record the real zlib inflate
time for every access of the orchestrated Case-3 session at each resolution
and benchmark a single inflate at the top resolution.
"""

import numpy as np

from repro.experiments import (
    experiment_resolutions,
    format_series,
    format_table,
)
from repro.lightfield.compression import codec_for_payload


def test_fig08_decompression(benchmark, suite, report):
    resolutions = experiment_resolutions()
    series = suite.fig08_decompression(resolutions)

    parts = []
    rows = []
    for res, values in series.items():
        fetched = [v for v in values if v > 0]
        parts.append(format_series(f"decompress s @ {res}x{res}", values,
                                   fmt="{:.4f}"))
        rows.append([
            res,
            float(np.mean(fetched)) if fetched else 0.0,
            float(np.max(fetched)) if fetched else 0.0,
            len(fetched),
        ])
    table = format_table(
        headers=["res", "mean decompress s", "max s", "fetches"],
        rows=rows,
        title="Figure 8 — time to uncompress received view sets",
    )
    report("fig08_decompression", table + "\n\n" + "\n\n".join(parts))

    # shape: decompression time grows with resolution
    means = {r[0]: r[1] for r in rows if r[3] > 0}
    res_sorted = sorted(means)
    assert means[res_sorted[-1]] > means[res_sorted[0]]
    # paper shape: low resolutions decompress sub-second even scaled to
    # slower CPUs; on this machine they are far below one second
    assert means[res_sorted[0]] < 1.0

    # representative kernel: one inflate at the top resolution
    top = res_sorted[-1]
    payload = suite.source(top).payload((1, 1))

    def inflate():
        codec = codec_for_payload(payload)
        return codec.decompress(payload)

    vs, _ = benchmark(inflate)
    assert vs.resolution == top

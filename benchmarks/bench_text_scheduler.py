"""Transfer-scheduling policy benchmark (the interference claim).

Section 4.3 observes that aggressive staging contends with foreground
misses during the initial phase.  The priority-aware transfer scheduler is
the repo's answer: weighted max-min sharing (DEMAND 8 : PREFETCH 2 :
STAGING 1) or strict demand preemption.  This benchmark quantifies the
recovery on the Figure-9 topology and emits ``BENCH_streaming.json`` so
regressions show up in review diffs.

The arms are declared in the builtin ``scheduling`` sweep spec (staging
off entirely, then aggressive staging under policies off / weighted /
strict) and executed through the sweep engine — this file only asserts on
the merged artifact and prints the table.  The headline metric is
**demand-miss latency** — mean client latency over accesses not served
from the agent cache or the client-resident set.

Set ``REPRO_TRACE_OUT=/path/out.json`` to additionally run one traced
case-3 session and save its Chrome/Perfetto trace there (CI uploads it as
an artifact).
"""

import os

from repro.experiments import format_table, run_sweep, spec_named

_SMALL = os.environ.get("REPRO_SCALE", "default") == "small"
_TRACE_OUT = os.environ.get("REPRO_TRACE_OUT")


def test_scheduling_policies(benchmark, suite, report):
    spec = spec_named("scheduling")
    result = run_sweep(spec, workers=1)
    res = spec.fixed["resolution"]
    rows = result.rows
    table = format_table(
        headers=["arm", "misses", "demand miss s", "mean latency s",
                 "initial phase", "deduped", "promoted", "cancelled"],
        rows=[[r["arm"], r["misses"], round(r["demand_miss_latency_s"], 4),
               round(r["mean_latency_s"], 4), r["initial_phase"],
               r["deduped"], r["promoted"], r["cancelled"]] for r in rows],
        title=f"Transfer scheduling — demand-miss latency @ {res}",
    )
    report("scheduling_policies", table)
    print(f"wrote {result.artifact_path}")
    by = {r["arm"]: r for r in rows}

    blind = by["staging+off"]["demand_miss_latency_s"]
    weighted = by["staging+weighted"]["demand_miss_latency_s"]
    strict = by["staging+strict"]["demand_miss_latency_s"]
    # the acceptance bar: priorities strictly reduce the interference that
    # priority-blind staging inflicts on foreground misses.  At the small
    # scale the tiny database localizes before contention builds (a single
    # miss), so only parity is required there.
    if _SMALL:
        assert weighted <= blind * 1.05
        assert strict <= blind * 1.05
    else:
        assert weighted < blind
        assert strict < blind
    # every arm actually exercised the miss path
    for r in rows:
        assert r["misses"] > 0
    # the merged artifact carries the same arms and derived speedups
    assert set(result.doc["arms"]) == {r["arm"] for r in rows}
    if weighted:
        assert result.doc["speedup_weighted_vs_off"] == round(
            blind / weighted, 4
        )

    benchmark.pedantic(
        lambda: run_sweep(spec, workers=1, write_artifact=False),
        rounds=1, iterations=1,
    )

    if _TRACE_OUT:
        from repro.obs import write_chrome_trace

        m = suite.run(3, res, tracing=True)
        n = write_chrome_trace(
            m.tracer, _TRACE_OUT,
            metrics_snapshot=m.obs.snapshot() if m.obs else None,
        )
        print(f"wrote {n} trace events -> {_TRACE_OUT}")

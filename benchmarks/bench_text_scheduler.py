"""Transfer-scheduling policy benchmark (the interference claim).

Section 4.3 observes that aggressive staging contends with foreground
misses during the initial phase.  The priority-aware transfer scheduler is
the repo's answer: weighted max-min sharing (DEMAND 8 : PREFETCH 2 :
STAGING 1) or strict demand preemption.  This benchmark quantifies the
recovery on the Figure-9 topology and emits ``BENCH_streaming.json`` so
regressions show up in review diffs.

Arms: staging off entirely (case 2), then aggressive staging (case 3)
under scheduling policies off / weighted / strict.  The headline metric is
**demand-miss latency** — mean client latency over accesses not served
from the agent cache or the client-resident set.

Set ``REPRO_TRACE_OUT=/path/out.json`` to additionally run one traced
case-3 session and save its Chrome/Perfetto trace there (CI uploads it as
an artifact).
"""

import os

from repro.experiments import (
    ablation_scheduling,
    experiment_resolutions,
    format_table,
)

_SMALL = os.environ.get("REPRO_SCALE", "default") == "small"
_TRACE_OUT = os.environ.get("REPRO_TRACE_OUT")


def test_scheduling_policies(benchmark, suite, report, bench_json):
    res = experiment_resolutions()[0]
    rows = ablation_scheduling(suite, res)
    table = format_table(
        headers=["arm", "misses", "demand miss s", "mean latency s",
                 "initial phase", "deduped", "promoted", "cancelled"],
        rows=[[r["arm"], r["misses"], round(r["demand_miss_latency_s"], 4),
               round(r["mean_latency_s"], 4), r["initial_phase"],
               r["deduped"], r["promoted"], r["cancelled"]] for r in rows],
        title=f"Transfer scheduling — demand-miss latency @ {res}",
    )
    report("scheduling_policies", table)
    by = {r["arm"]: r for r in rows}

    blind = by["staging+off"]["demand_miss_latency_s"]
    weighted = by["staging+weighted"]["demand_miss_latency_s"]
    strict = by["staging+strict"]["demand_miss_latency_s"]
    # the acceptance bar: priorities strictly reduce the interference that
    # priority-blind staging inflicts on foreground misses.  At the small
    # scale the tiny database localizes before contention builds (a single
    # miss), so only parity is required there.
    if _SMALL:
        assert weighted <= blind * 1.05
        assert strict <= blind * 1.05
    else:
        assert weighted < blind
        assert strict < blind
    # every arm actually exercised the miss path
    for r in rows:
        assert r["misses"] > 0

    bench_json("streaming", {
        "benchmark": "transfer_scheduling",
        "resolution": res,
        "metric": "demand_miss_latency_s",
        "arms": {r["arm"]: {
            "policy": r["policy"],
            "staging": r["staging"],
            "misses": r["misses"],
            "demand_miss_latency_s": round(r["demand_miss_latency_s"], 6),
            "mean_latency_s": round(r["mean_latency_s"], 6),
            "initial_phase": r["initial_phase"],
            "deduped": r["deduped"],
            "promoted": r["promoted"],
            "cancelled": r["cancelled"],
        } for r in rows},
        "speedup_weighted_vs_off": round(blind / weighted, 4)
        if weighted else None,
        "speedup_strict_vs_off": round(blind / strict, 4)
        if strict else None,
    })
    benchmark.pedantic(
        lambda: ablation_scheduling(suite, res), rounds=1, iterations=1
    )

    if _TRACE_OUT:
        from repro.obs import write_chrome_trace

        m = suite.run(3, res, tracing=True)
        n = write_chrome_trace(
            m.tracer, _TRACE_OUT,
            metrics_snapshot=m.obs.snapshot() if m.obs else None,
        )
        print(f"wrote {n} trace events -> {_TRACE_OUT}")

"""Ablations of the design choices DESIGN.md calls out.

1. Prefetch policy (quadrant / all-neighbors / none) — miss rate vs
   extraneous transfers (Figure 4's design point).
2. Staging order (proximity vs FIFO) and concurrency — the "ordered by
   distance from the cursor" claim.
3. LoRS stripe width — multi-stream download speedup.
4. Codec (zlib levels, delta predictor) — the "more efficient compression
   scheme" the paper suggests.
5. View-set size l — the locality/granularity knob.
"""

import os


from repro.experiments import (
    ablation_agent_cache,
    ablation_codec,
    ablation_prefetch_policy,
    ablation_staging,
    ablation_stripe_width,
    ablation_viewset_size,
    experiment_resolutions,
    format_table,
)

_SMALL = os.environ.get("REPRO_SCALE", "default") == "small"


def test_ablation_prefetch_policy(benchmark, suite, report):
    res = experiment_resolutions()[0]
    rows = ablation_prefetch_policy(suite, res)
    table = format_table(
        headers=["policy", "hit rate", "wan rate", "mean latency s",
                 "prefetches"],
        rows=[[r["policy"], r["hit_rate"], r["wan_rate"],
               r["mean_latency_s"], r["prefetches"]] for r in rows],
        title=f"Ablation — prefetch policy (case 2 @ {res})",
    )
    report("ablation_prefetch_policy", table)
    by = {r["policy"]: r for r in rows}
    # no prefetch must be the worst on hit rate; quadrant beats none
    assert by["none"]["hit_rate"] <= by["quadrant"]["hit_rate"]
    # all-neighbors issues at least as many prefetch transfers
    assert by["all-neighbors"]["prefetches"] >= by["quadrant"]["prefetches"]
    benchmark.pedantic(
        lambda: ablation_prefetch_policy(suite, res, case=2),
        rounds=1, iterations=1,
    )


def test_ablation_staging(benchmark, suite, report):
    res = experiment_resolutions()[1 if not _SMALL else 0]
    rows = ablation_staging(suite, res)
    table = format_table(
        headers=["order", "concurrency", "initial phase", "wan rate",
                 "mean latency s", "staged"],
        rows=[[r["order"], r["concurrency"], r["initial_phase"],
               r["wan_rate"], r["mean_latency_s"], r["staged"]]
              for r in rows],
        title=f"Ablation — staging order and concurrency (case 3 @ {res})",
    )
    report("ablation_staging", table)
    prox = [r for r in rows if r["order"] == "proximity"]
    fifo = [r for r in rows if r["order"] == "fifo"]
    # cursor-proximity staging localizes the useful view sets sooner:
    # equal-concurrency comparisons never favor FIFO on WAN rate
    for p, f in zip(prox, fifo):
        assert p["concurrency"] == f["concurrency"]
        assert p["wan_rate"] <= f["wan_rate"] + 0.15
    benchmark.pedantic(
        lambda: suite.run(3, res, staging_order="fifo",
                          staging_concurrency=4),
        rounds=1, iterations=1,
    )


def test_ablation_stripe_width(benchmark, suite, report):
    res = experiment_resolutions()[0]
    rows = ablation_stripe_width(suite, res)
    table = format_table(
        headers=["stripe width", "mean WAN fetch s", "wan rate",
                 "mean latency s"],
        rows=[[r["stripe_width"], r["mean_wan_fetch_s"], r["wan_rate"],
               r["mean_latency_s"]] for r in rows],
        title=f"Ablation — LoRS stripe width (case 2 @ {res})",
    )
    report("ablation_stripe_width", table)
    by = {r["stripe_width"]: r for r in rows}
    # multi-stream striping makes individual WAN fetches no slower (and
    # typically faster) than single-depot placement
    if by[1]["mean_wan_fetch_s"] and by[3]["mean_wan_fetch_s"]:
        assert (
            by[3]["mean_wan_fetch_s"] <= by[1]["mean_wan_fetch_s"] * 1.10
        )
    benchmark.pedantic(
        lambda: ablation_stripe_width(suite, res), rounds=1, iterations=1
    )


def test_ablation_codec(benchmark, report):
    rows = ablation_codec(resolution=64 if _SMALL else 128)
    table = format_table(
        headers=["codec", "ratio", "compress s", "decompress s",
                 "payload MB"],
        rows=[[r["codec"], r["ratio"], r["compress_s"], r["decompress_s"],
               r["payload_mb"]] for r in rows],
        title="Ablation — view-set codec",
    )
    report("ablation_codec", table)
    by = {r["codec"]: r for r in rows}
    # higher zlib level never compresses worse
    assert by["zlib-9"]["ratio"] >= by["zlib-1"]["ratio"] * 0.99
    # every codec is lossless and produces a real payload
    for r in rows:
        assert r["ratio"] > 1.0
    benchmark.pedantic(
        lambda: ablation_codec(resolution=64), rounds=1, iterations=1
    )


def test_ablation_agent_cache(benchmark, suite, report):
    res = experiment_resolutions()[0]
    rows = ablation_agent_cache(suite, res)
    table = format_table(
        headers=["cache (payloads)", "hit rate", "wan rate",
                 "mean latency s"],
        rows=[[r["cache_payloads"], r["hit_rate"], r["wan_rate"],
               r["mean_latency_s"]] for r in rows],
        title=f"Ablation — client-agent cache budget (case 2 @ {res})",
    )
    report("ablation_agent_cache", table)
    by = {r["cache_payloads"]: r for r in rows}
    # a starved cache cannot out-hit an unbounded one
    assert by[2]["hit_rate"] <= by["unbounded"]["hit_rate"] + 1e-9
    benchmark.pedantic(
        lambda: ablation_agent_cache(suite, res), rounds=1, iterations=1
    )


def test_ablation_viewset_size(benchmark, report):
    rows = ablation_viewset_size(resolution=64 if _SMALL else 128)
    table = format_table(
        headers=["l", "window deg", "payload MB",
                 "distinct viewsets in trace", "bytes for trace MB"],
        rows=[[r["l"], r["window_deg"], r["payload_mb"],
               r["distinct_viewsets_in_trace"], r["bytes_for_trace_mb"]]
              for r in rows],
        title="Ablation — view-set edge length l (locality knob)",
    )
    report("ablation_viewset_size", table)
    by = {r["l"]: r for r in rows}
    # bigger l => bigger transfer unit
    assert by[6]["payload_mb"] > by[2]["payload_mb"]
    benchmark.pedantic(
        lambda: ablation_viewset_size(resolution=64), rounds=1, iterations=1
    )

"""Ablations of the design choices DESIGN.md calls out.

1. Prefetch policy (quadrant / all-neighbors / none) — miss rate vs
   extraneous transfers (Figure 4's design point).
2. Staging order (proximity vs FIFO) and concurrency — the "ordered by
   distance from the cursor" claim.
3. LoRS stripe width — multi-stream download speedup.
4. Codec (zlib levels, delta predictor) — the "more efficient compression
   scheme" the paper suggests.
5. Client-agent cache budget — the shared mid-tier's working-set knob.
6. View-set size l — the locality/granularity knob.

All six families are declared as points of the builtin ``ablations``
sweep spec; this module runs that sweep **once** (module-scoped fixture),
which merges every arm into ``BENCH_ablations.json``, and each test
asserts on its own family of the merged document.
"""

import os

import pytest

from repro.experiments import format_table, run_sweep, spec_named

_SMALL = os.environ.get("REPRO_SCALE", "default") == "small"


@pytest.fixture(scope="module")
def ablations():
    """The merged ablations artifact (one engine run for every family)."""
    result = run_sweep(spec_named("ablations"), workers=1)
    print(f"wrote {result.artifact_path}")
    return result.doc


def test_ablation_prefetch_policy(ablations, report):
    rows = ablations["families"]["prefetch"]
    table = format_table(
        headers=["policy", "hit rate", "wan rate", "mean latency s",
                 "prefetches"],
        rows=[[r["policy"], r["hit_rate"], r["wan_rate"],
               r["mean_latency_s"], r["prefetches"]] for r in rows],
        title="Ablation — prefetch policy (case 2)",
    )
    report("ablation_prefetch_policy", table)
    by = {r["policy"]: r for r in rows}
    # no prefetch must be the worst on hit rate; quadrant beats none
    assert by["none"]["hit_rate"] <= by["quadrant"]["hit_rate"]
    # all-neighbors issues at least as many prefetch transfers
    assert by["all-neighbors"]["prefetches"] >= by["quadrant"]["prefetches"]


def test_ablation_staging(ablations, report):
    rows = ablations["families"]["staging"]
    table = format_table(
        headers=["order", "concurrency", "initial phase", "wan rate",
                 "mean latency s", "staged"],
        rows=[[r["order"], r["concurrency"], r["initial_phase"],
               r["wan_rate"], r["mean_latency_s"], r["staged"]]
              for r in rows],
        title="Ablation — staging order and concurrency (case 3)",
    )
    report("ablation_staging", table)
    prox = [r for r in rows if r["order"] == "proximity"]
    fifo = [r for r in rows if r["order"] == "fifo"]
    # cursor-proximity staging localizes the useful view sets sooner:
    # equal-concurrency comparisons never favor FIFO on WAN rate
    for p, f in zip(prox, fifo):
        assert p["concurrency"] == f["concurrency"]
        assert p["wan_rate"] <= f["wan_rate"] + 0.15


def test_ablation_stripe_width(ablations, report):
    rows = ablations["families"]["stripe"]
    table = format_table(
        headers=["stripe width", "mean WAN fetch s", "wan rate",
                 "mean latency s"],
        rows=[[r["stripe_width"], r["mean_wan_fetch_s"], r["wan_rate"],
               r["mean_latency_s"]] for r in rows],
        title="Ablation — LoRS stripe width (case 2)",
    )
    report("ablation_stripe_width", table)
    by = {r["stripe_width"]: r for r in rows}
    # multi-stream striping makes individual WAN fetches no slower (and
    # typically faster) than single-depot placement
    if by[1]["mean_wan_fetch_s"] and by[3]["mean_wan_fetch_s"]:
        assert (
            by[3]["mean_wan_fetch_s"] <= by[1]["mean_wan_fetch_s"] * 1.10
        )


def test_ablation_codec(ablations, report):
    rows = ablations["families"]["codec"]
    walls = ablations["wall_clock"]["codec"]
    table = format_table(
        headers=["codec", "ratio", "compress s", "decompress s",
                 "payload MB"],
        rows=[[r["codec"], r["ratio"], walls[r["codec"]]["compress_s"],
               walls[r["codec"]]["decompress_s"], r["payload_mb"]]
              for r in rows],
        title="Ablation — view-set codec",
    )
    report("ablation_codec", table)
    by = {r["codec"]: r for r in rows}
    # higher zlib level never compresses worse
    assert by["zlib-9"]["ratio"] >= by["zlib-1"]["ratio"] * 0.99
    # every codec is lossless and produces a real payload, and its host
    # timings stay quarantined out of the deterministic payload
    for r in rows:
        assert r["ratio"] > 1.0
        assert "compress_s" not in r and "decompress_s" not in r
        assert walls[r["codec"]]["compress_s"] >= 0.0


def test_ablation_agent_cache(ablations, report):
    rows = ablations["families"]["agent_cache"]
    table = format_table(
        headers=["cache (payloads)", "hit rate", "wan rate",
                 "mean latency s"],
        rows=[[r["cache_payloads"], r["hit_rate"], r["wan_rate"],
               r["mean_latency_s"]] for r in rows],
        title="Ablation — client-agent cache budget (case 2)",
    )
    report("ablation_agent_cache", table)
    by = {r["cache_payloads"]: r for r in rows}
    # a starved cache cannot out-hit an unbounded one
    assert by[2]["hit_rate"] <= by["unbounded"]["hit_rate"] + 1e-9


def test_ablation_viewset_size(ablations, report):
    rows = ablations["families"]["viewset_size"]
    table = format_table(
        headers=["l", "window deg", "payload MB",
                 "distinct viewsets in trace", "bytes for trace MB"],
        rows=[[r["l"], r["window_deg"], r["payload_mb"],
               r["distinct_viewsets_in_trace"], r["bytes_for_trace_mb"]]
              for r in rows],
        title="Ablation — view-set edge length l (locality knob)",
    )
    report("ablation_viewset_size", table)
    by = {r["l"]: r for r in rows}
    # bigger l => bigger transfer unit
    assert by[6]["payload_mb"] > by[2]["payload_mb"]

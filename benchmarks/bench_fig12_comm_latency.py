"""Figure 12: communication latency per access, log scale, three panels.

Paper: the data-access component spans four decades — agent-cache hits
~1e-4 s, LAN-depot fetches ~1e-2..1e-1 s, WAN fetches ~1 s.  The three
panels (200², 300², 500²) all show Case 1 and Case 3 collapsing onto the
hit/LAN tiers while Case 2 keeps spiking to the WAN tier.
"""

import numpy as np

from repro.experiments import (
    experiment_resolutions,
    format_series,
    format_table,
)
from repro.streaming.metrics import AccessSource


def test_fig12_comm_latency(benchmark, suite, report):
    resolutions = experiment_resolutions()
    parts = []
    tier_rows = []
    for res in resolutions:
        data = suite.fig12_comm_latency(res)
        for case, values in data.items():
            # log-scale friendly: floor at the hit tier
            floored = [max(v, 1e-4) for v in values]
            parts.append(
                format_series(
                    f"comm s (log-ready) case {case} @ {res}", floored,
                    fmt="{:.5f}",
                )
            )
        # tier medians, attributed as the paper's panels do: hits from any
        # case, the LAN-depot tier from Case 3 (where staging feeds it),
        # the WAN tier from Case 2 (pure wide-area fetches — Case 3's
        # "WAN" accesses can be partially staged mixes)
        hits, lan, wan = [], [], []
        for case in (1, 2, 3):
            for a in suite.run(case, res).accesses:
                if a.source is AccessSource.AGENT_CACHE:
                    hits.append(max(a.comm_latency, 1e-4))
        for a in suite.run(3, res).accesses:
            if a.source is AccessSource.LAN_DEPOT:
                lan.append(a.comm_latency)
        for a in suite.run(2, res).accesses:
            if a.source is AccessSource.WAN_DEPOT:
                wan.append(a.comm_latency)
        tier_rows.append([
            res,
            float(np.median(hits)) if hits else 0.0,
            float(np.median(lan)) if lan else 0.0,
            float(np.median(wan)) if wan else 0.0,
        ])
    table = format_table(
        headers=["res", "hit tier s", "lan-depot tier s", "wan tier s"],
        rows=tier_rows,
        title="Figure 12 — communication latency tiers (medians)",
    )
    report("fig12_comm_latency", table + "\n\n" + "\n\n".join(parts))

    # the decades must separate cleanly, as in the paper's log plots
    for res, hit, _lan, wan in tier_rows:
        if hit and wan:
            assert wan / hit > 100, f"hit/WAN tiers too close at {res}"
        if hit:
            assert hit < 0.001
    # at the top resolution every tier is well populated: full ordering
    top = tier_rows[-1]
    _, hit, lan, wan = top
    if hit and lan and wan:
        assert hit < lan < wan, f"tier ordering broken at {top[0]}"

    # representative kernel: the comm-series extraction itself
    benchmark(suite.fig12_comm_latency, resolutions[0])

"""Observability overhead benchmark (the disabled-tracer budget).

DESIGN.md §9 promises that the tracing layer is effectively free when off:
every instrumented hot path pays one attribute read and a no-op method call
on the shared ``NOOP_SPAN``.  This benchmark executes the builtin
``observability`` sweep spec — the identical streaming session with
tracing off and on — through the sweep engine, which quarantines both wall
clocks under ``BENCH_observability.json``'s ``wall_clock`` section, and
asserts the disabled-mode run stays within the budget of its own no-op
baseline (the untraced run *is* the baseline — the tracer parameter
defaults to the shared ``NULL_TRACER``, so there is no third
"uninstrumented" build to compare against).

The traced/untraced ratio is reported but not asserted: turning tracing on
legitimately costs span allocation and sampler events, and the number is
there so the cost stays visible in review diffs.

The spec also sweeps *fleet* tiers — sharded multi-client sessions on a
pinned rig (9x18 l=3 lattice, 48², modeled CPU) whose stitched telemetry
yields fleet QGR, demand-miss p99 and depot load skew per tier.  Those
deterministic health figures land in ``payload["fleet"]`` (guarded by
``check_regression.py --section fleet``), the per-tier traced/untraced
costs under ``wall_clock["fleet"]``.
"""

from typing import Mapping

from repro.experiments import observability_overhead, run_sweep, spec_named


def test_observability_overhead(benchmark, report):
    result = run_sweep(spec_named("observability"), workers=1)
    session = next(r for r in result.rows if "n_clients" not in r)
    wall = result.walls[result.rows.index(session)]
    lines = [
        f"Observability overhead @ {session['resolution']}², "
        f"case {session['case']}, {session['accesses']} accesses",
        f"  untraced : {wall['untraced_s'] * 1e3:9.1f} ms",
        f"  traced   : {wall['traced_s'] * 1e3:9.1f} ms "
        f"({session['spans']} spans)",
        f"  ratio    : {wall['ratio']:.3f}x",
    ]
    fleet = result.doc.get("fleet", {})
    fleet_wall = result.doc["wall_clock"].get("fleet", {})
    for key, tier in fleet.items():
        lines.append(
            f"  fleet {key:>7}: qgr {tier['qgr']:.3f}, "
            f"miss p99 {tier['demand_miss_p99_s'] * 1e3:.1f} ms, "
            f"skew {tier['load_skew_max_over_mean']:.2f}x "
            f"(gini {tier['load_skew_gini']:.3f}), "
            f"ratio {fleet_wall[key]['ratio']:.3f}x"
        )
    report("observability_overhead", "\n".join(lines))
    print(f"wrote {result.artifact_path}")

    # sanity: tracing actually recorded the session
    assert session["spans"] > 0
    # the traced run must not be catastrophically slower (an order of
    # magnitude would mean a hot path allocates spans per block, not per
    # request); the untraced run is its own baseline by construction
    assert wall["ratio"] < 10.0
    # the artifact quarantines every wall number out of the payload
    assert "wall_clock" not in session
    assert set(result.doc["wall_clock"]) == {
        "untraced_s", "traced_s", "ratio", "fleet",
    }

    # every fleet tier carries its health figures and a sane traced cost
    assert fleet, "spec must expand at least one fleet tier"
    for key, tier in fleet.items():
        assert isinstance(tier, Mapping)
        assert tier["spans"] > 0, key
        assert 0.0 <= tier["qgr"] <= 1.0, key
        assert tier["demand_miss_p99_s"] > 0.0, key
        assert tier["load_skew_max_over_mean"] >= 1.0, key
        assert 0.0 <= tier["load_skew_gini"] < 1.0, key
        assert fleet_wall[key]["ratio"] < 10.0, key

    benchmark.pedantic(
        lambda: observability_overhead(
            resolution=48, n_accesses=10, repeats=1
        ),
        rounds=1, iterations=1,
    )

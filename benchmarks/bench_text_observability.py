"""Observability overhead benchmark (the disabled-tracer budget).

DESIGN.md §9 promises that the tracing layer is effectively free when off:
every instrumented hot path pays one attribute read and a no-op method call
on the shared ``NOOP_SPAN``.  This benchmark runs the identical streaming
session with tracing off and on, records both wall clocks in
``BENCH_observability.json``, and asserts the disabled-mode run stays
within the budget of its own no-op baseline (the untraced run *is* the
baseline — the tracer parameter defaults to the shared ``NULL_TRACER``, so
there is no third "uninstrumented" build to compare against).

The traced/untraced ratio is reported but not asserted: turning tracing on
legitimately costs span allocation and sampler events, and the number is
there so the cost stays visible in review diffs.
"""

import os

from repro.experiments import observability_overhead

_SMALL = os.environ.get("REPRO_SCALE", "default") == "small"


def test_observability_overhead(benchmark, report, bench_json):
    row = observability_overhead(
        resolution=48 if _SMALL else 64,
        n_accesses=20 if _SMALL else 30,
        repeats=3,
    )
    lines = [
        f"Observability overhead @ {row['resolution']}², "
        f"case {row['case']}, {row['accesses']} accesses",
        f"  untraced : {row['untraced_s'] * 1e3:9.1f} ms",
        f"  traced   : {row['traced_s'] * 1e3:9.1f} ms "
        f"({row['spans']} spans)",
        f"  ratio    : {row['ratio']:.3f}x",
    ]
    report("observability_overhead", "\n".join(lines))

    bench_json("observability", {
        "benchmark": "observability_overhead",
        "resolution": row["resolution"],
        "case": row["case"],
        "accesses": row["accesses"],
        "spans": row["spans"],
    }, wall_clock={
        "untraced_s": round(row["untraced_s"], 6),
        "traced_s": round(row["traced_s"], 6),
        "ratio": round(row["ratio"], 4),
    })

    # sanity: tracing actually recorded the session
    assert row["spans"] > 0
    # the traced run must not be catastrophically slower (an order of
    # magnitude would mean a hot path allocates spans per block, not per
    # request); the untraced run is its own baseline by construction
    assert row["ratio"] < 10.0

    benchmark.pedantic(
        lambda: observability_overhead(
            resolution=48, n_accesses=10, repeats=1
        ),
        rounds=1, iterations=1,
    )

"""Observability overhead benchmark (the disabled-tracer budget).

DESIGN.md §9 promises that the tracing layer is effectively free when off:
every instrumented hot path pays one attribute read and a no-op method call
on the shared ``NOOP_SPAN``.  This benchmark executes the builtin
``observability`` sweep spec — the identical streaming session with
tracing off and on — through the sweep engine, which quarantines both wall
clocks under ``BENCH_observability.json``'s ``wall_clock`` section, and
asserts the disabled-mode run stays within the budget of its own no-op
baseline (the untraced run *is* the baseline — the tracer parameter
defaults to the shared ``NULL_TRACER``, so there is no third
"uninstrumented" build to compare against).

The traced/untraced ratio is reported but not asserted: turning tracing on
legitimately costs span allocation and sampler events, and the number is
there so the cost stays visible in review diffs.
"""

from repro.experiments import observability_overhead, run_sweep, spec_named


def test_observability_overhead(benchmark, report):
    result = run_sweep(spec_named("observability"), workers=1)
    row = result.rows[0]
    wall = result.walls[0]
    lines = [
        f"Observability overhead @ {row['resolution']}², "
        f"case {row['case']}, {row['accesses']} accesses",
        f"  untraced : {wall['untraced_s'] * 1e3:9.1f} ms",
        f"  traced   : {wall['traced_s'] * 1e3:9.1f} ms "
        f"({row['spans']} spans)",
        f"  ratio    : {wall['ratio']:.3f}x",
    ]
    report("observability_overhead", "\n".join(lines))
    print(f"wrote {result.artifact_path}")

    # sanity: tracing actually recorded the session
    assert row["spans"] > 0
    # the traced run must not be catastrophically slower (an order of
    # magnitude would mean a hot path allocates spans per block, not per
    # request); the untraced run is its own baseline by construction
    assert wall["ratio"] < 10.0
    # the artifact quarantines every wall number out of the payload
    assert "wall_clock" not in result.rows[0]
    assert set(result.doc["wall_clock"]) == {
        "untraced_s", "traced_s", "ratio",
    }

    benchmark.pedantic(
        lambda: observability_overhead(
            resolution=48, n_accesses=10, repeats=1
        ),
        rounds=1, iterations=1,
    )

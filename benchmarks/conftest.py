"""Shared fixtures for the benchmark harness.

Figures 8-12 and the Section 4.3 statistics all derive from the same nine
streaming sessions (Cases 1-3 × three resolutions), so one memoized
:class:`StreamingSuite` is shared session-wide.  Every benchmark writes its
paper-style table/series to ``benchmarks/results/`` so the regenerated data
survives pytest's output capture.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import StreamingSuite

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="session")
def suite() -> StreamingSuite:
    """The memoized 3-case × 3-resolution streaming suite."""
    return StreamingSuite()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def report(results_dir, request):
    """Write (and echo) a named report file for this benchmark."""

    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(text)

    return _write


@pytest.fixture()
def bench_json():
    """Write a machine-readable ``BENCH_<name>.json`` at the repo root.

    Unlike the human-oriented ``report`` tables (which live in the
    gitignored ``benchmarks/results/``), these JSON artifacts are meant to
    be committed so perf regressions show up in review diffs.
    """

    def _write(name: str, payload: dict) -> None:
        path = REPO_ROOT / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")

    return _write

"""Shared fixtures for the benchmark harness.

Figures 8-12 and the Section 4.3 statistics all derive from the same nine
streaming sessions (Cases 1-3 × three resolutions), so one memoized
:class:`StreamingSuite` is shared session-wide.  Every benchmark writes its
paper-style table/series to ``benchmarks/results/`` so the regenerated data
survives pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

import pytest

from repro.analysis.determinism import MODELED_CPU_SECONDS_PER_BYTE
from repro.experiments import StreamingSuite, write_bench

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="session")
def suite() -> StreamingSuite:
    """The memoized 3-case × 3-resolution streaming suite.

    Decompression cost is *modeled* (``cpu_seconds_per_byte``) rather than
    measured, so every sim-time statistic the suite produces — and every
    compared field in the ``BENCH_*.json`` artifacts built from it — is
    bit-identical across machines and runs.
    """
    return StreamingSuite(config_overrides={
        "cpu_seconds_per_byte": MODELED_CPU_SECONDS_PER_BYTE,
    })


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def report(results_dir, request):
    """Write (and echo) a named report file for this benchmark."""

    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(text)

    return _write


@pytest.fixture()
def bench_json():
    """Write a machine-readable ``BENCH_<name>.json`` at the repo root.

    Unlike the human-oriented ``report`` tables (which live in the
    gitignored ``benchmarks/results/``), these JSON artifacts are meant to
    be committed so perf regressions show up in review diffs.  That only
    works if a no-change rerun produces a byte-identical file, so the
    contract is strict:

    * ``payload`` may contain **only deterministic fields** — sim-time
      statistics, counts, modeled costs — reproducible from the stamped
      seed;
    * host wall-clock measurements go in ``wall_clock``, serialized under
      a top-level key of the same name that reviewers (and any automated
      comparison) ignore;
    * every artifact is stamped with the seed and scale that produced it,
      so a diff that *does* appear is attributable.

    The writer itself is :func:`repro.experiments.write_bench` — the same
    single artifact layer the sweep engine uses — so the meta header and
    serialization can never drift between the two paths.
    """

    def _write(name: str, payload: dict,
               wall_clock: Optional[dict] = None) -> None:
        path = write_bench(name, payload, wall_clock, out_dir=REPO_ROOT)
        print(f"wrote {path}")

    return _write

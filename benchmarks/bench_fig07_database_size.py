"""Figure 7: total light field database size, compressed vs uncompressed.

Paper: at 200²-600² sample resolution the database is 1.5-14 GB raw and
compresses 5-7× with zlib (max ~2 GB compressed).  We render sample view
sets for real, compress them, and extrapolate across the paper's 12 × 24
view-set grid (DESIGN.md §2 records this substitution).
"""

import os

import pytest

from repro.experiments import PAPER, fig07_database_size, format_table
from repro.lightfield.lattice import CameraLattice

_SMALL = os.environ.get("REPRO_SCALE", "default") == "small"
RESOLUTIONS = (64, 128) if _SMALL else (200, 300, 400, 500, 600)


@pytest.fixture(scope="module")
def size_rows():
    return fig07_database_size(
        resolutions=RESOLUTIONS,
        volume_size=32,
        sample_viewsets=1,
        workers=1,
    )


def test_fig07_database_size(benchmark, size_rows, report):
    """Regenerate Figure 7's bars; benchmark = compressing one view set."""
    from repro.lightfield.build import LightFieldBuilder
    from repro.render.raycast import RenderSettings
    from repro.volume import neg_hip, preset

    table = format_table(
        headers=[
            "res", "viewset raw MB", "viewset zlib MB", "ratio",
            "total raw GB", "total zlib GB",
            "paper raw GB", "paper zlib GB",
        ],
        rows=[
            [
                r["resolution"], r["viewset_raw_mb"],
                r["viewset_compressed_mb"], r["ratio"],
                r["total_uncompressed_gb"], r["total_compressed_gb"],
                r["paper_uncompressed_gb"] or "-",
                r["paper_compressed_gb"] or "-",
            ]
            for r in size_rows
        ],
        title="Figure 7 — light field database size vs sample resolution",
    )
    report("fig07_database_size", table)

    # shape assertions: size grows ~quadratically with resolution and the
    # compression ratio sits in (or near) the paper's 5-7x band.  At high
    # sample resolutions our 32^3 synthetic volume is oversampled, so the
    # rendered views are smoother than the paper's 64^3 negHip and zlib
    # over-performs — the ratio band is widened upward accordingly.
    first, last = size_rows[0], size_rows[-1]
    scale = (last["resolution"] / first["resolution"]) ** 2
    growth = last["total_uncompressed_gb"] / first["total_uncompressed_gb"]
    assert growth == pytest.approx(scale, rel=0.15)
    for r in size_rows:
        assert 3.0 < r["ratio"] < 20.0
    if not _SMALL:
        lo, hi = PAPER.compression_ratio_band
        in_band = [r for r in size_rows if lo - 0.5 <= r["ratio"] <= hi + 2.5]
        assert in_band, "no resolution landed near the paper's 5-7x band"

    # representative kernel: zlib compression of one rendered view set
    builder = LightFieldBuilder(
        neg_hip(size=32), preset("neghip"),
        CameraLattice(72, 144, 6), resolution=RESOLUTIONS[0], workers=1,
        settings=RenderSettings(shaded=False),
    )
    vs = builder.render_viewset((6, 11))
    result = benchmark(builder.codec.compress, vs)
    assert result.ratio > 2.0

"""Section 4.2: the Quality Guaranteed Rate (QGR).

Paper: "The QGR of case 2, direct streaming and prefetching across WAN, is
significantly slower than the QGR's in case 1 and 3" — i.e. with a LAN depot
the user can move much faster before latency stops being hidden.  We re-time
the same spatial cursor paths at several speeds and report the steady-state
fraction of accesses whose latency stayed hidden; the collapse point is the
QGR.
"""

import os


from repro.experiments import experiment_resolutions, format_table, qgr_sweep

_SMALL = os.environ.get("REPRO_SCALE", "default") == "small"


def test_text_qgr(benchmark, suite, report):
    res = experiment_resolutions()[0]
    speeds = (1.0, 2.0, 4.0)
    rows = qgr_sweep(
        suite, res, speeds=speeds,
        seeds=(7, 11) if _SMALL else (7, 11, 13),
        n_accesses=20 if _SMALL else 40,
    )
    table = format_table(
        headers=["case", "cursor speed x", "hidden fraction"],
        rows=[[f"case {r['case']}", r["speed"], r["hidden_fraction"]]
              for r in rows],
        title=f"Section 4.2 — QGR sweep @ {res} (hidden-latency fraction)",
    )
    report("text_qgr", table)

    by = {(r["case"], r["speed"]): r["hidden_fraction"] for r in rows}
    # at the highest tested speed, the LAN depot must hide at least as much
    # latency as direct WAN streaming — case 3's QGR is the faster one
    top_speed = speeds[-1]
    assert by[(3, top_speed)] >= by[(2, top_speed)] - 0.05
    # and case 3 sustains a high hidden fraction across the sweep
    assert min(by[(3, s)] for s in speeds) >= 0.5

    benchmark.pedantic(
        lambda: qgr_sweep(suite, res, speeds=(2.0,), seeds=(7,),
                          n_accesses=15),
        rounds=1, iterations=1,
    )

"""Figure 10: client latency per view-set access at 300², Cases 1-3.

Paper shape: same as Figure 9 — the initial phase at 300² is still a single
access; Case 3 tracks Case 1 and Case 2 keeps paying WAN latency.
"""


from bench_fig09_latency_200 import _assert_paper_shape, _report_latency
from repro.experiments import experiment_resolutions


def test_fig10_latency_300(benchmark, suite, report):
    resolution = experiment_resolutions()[1]
    _report_latency(suite, resolution, report, "fig10_latency_300")
    m1, m2, m3 = _assert_paper_shape(suite, resolution)
    # mid resolution: initial phase still short relative to the run
    assert m3.initial_phase_length() <= len(m3.accesses) // 3

    result = benchmark.pedantic(
        lambda: suite.run(3, resolution, trace_seed=13),
        rounds=1, iterations=1,
    )
    assert len(result.accesses) > 0

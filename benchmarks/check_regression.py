#!/usr/bin/env python
"""Fail CI when a committed ``BENCH_*.json`` wall-clock figure regresses.

Every committed benchmark artifact carries the last accepted performance
envelope in its quarantined ``wall_clock`` section.  CI regenerates the
artifact on the runner and this script compares the *fresh* numbers
against the *committed* ones (``git show <ref>:<artifact>``), failing on
any drop beyond the threshold.

The comparison is generic over the artifact shape: the ``wall_clock``
tree is flattened to dotted keys (``runs.8/incremental.events_per_second``,
``sharded.4.makespan_s``, ``speedup``), and ``--select`` fnmatch patterns
choose which leaves are guarded.  ``--section`` retargets the comparison
at any other dotted top-level subtree (e.g. ``--section fleet`` guards
the deterministic payload figures of the fleet observability tiers —
useful with a tight ``--threshold``, since those numbers carry no host
noise).  ``--direction`` says which way is good:

* ``higher`` (default) — throughput-style figures (events/s, speedup);
  a fresh value below ``(1 - threshold) x committed`` fails;
* ``lower`` — latency/duration figures (wall_s, compress_s); a fresh
  value above ``(1 + threshold) x committed`` fails.

``--min-wall`` skips figures whose run was too short for a stable
number: a leaf is exempt when the nearest sibling duration key
(``wall_s`` / ``makespan_s``, or the leaf itself when it *is* one) is
under the floor on either side.  Keys present on only one side (e.g.
fleet sizes that differ between ``REPRO_SCALE=small`` runs and
full-scale committed baselines) are reported but never compared.

The threshold is deliberately loose: this is a guard against
order-of-magnitude mistakes (an accidentally quadratic path, a dead
fast path), not a microbenchmark.  Tune per-invocation with
``--threshold`` or the ``REPRO_BENCH_TOLERANCE`` environment variable.
"""

import argparse
import fnmatch
import json
import os
import subprocess
import sys
from typing import Dict, List, Optional

#: sibling keys treated as the "how long did this run" guard figure
WALL_GUARD_KEYS = ("wall_s", "makespan_s")


def committed_baseline(ref: str, artifact: str) -> Optional[dict]:
    """The artifact as committed at ``ref`` (None when absent)."""
    try:
        blob = subprocess.run(
            ["git", "show", f"{ref}:{artifact}"],
            capture_output=True, text=True, check=True,
        ).stdout
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None
    return json.loads(blob)


def flatten_wall(node: object, prefix: str = "") -> Dict[str, float]:
    """Every numeric leaf of a wall_clock tree, keyed by dotted path."""
    out: Dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_wall(value, path))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = float(node)
    return out


def section_subtree(doc: dict, section: str) -> object:
    """The subtree at a dotted path (empty dict when absent)."""
    node: object = doc
    for part in section.split("."):
        if not isinstance(node, dict) or part not in node:
            return {}
        node = node[part]
    return node


def select_keys(
    leaves: Dict[str, float], patterns: Optional[List[str]]
) -> List[str]:
    if not patterns:
        return sorted(leaves)
    return sorted(
        k for k in leaves
        if any(fnmatch.fnmatchcase(k, p) for p in patterns)
    )


def guard_wall(leaves: Dict[str, float], key: str) -> Optional[float]:
    """The duration figure guarding ``key`` (itself, or a sibling)."""
    leaf = key.rsplit(".", 1)[-1]
    if leaf in WALL_GUARD_KEYS:
        return leaves[key]
    parent = key.rsplit(".", 1)[0] if "." in key else ""
    for wall_name in WALL_GUARD_KEYS:
        sibling = f"{parent}.{wall_name}" if parent else wall_name
        if sibling in leaves:
            return leaves[sibling]
    return None


def compare(
    fresh_doc: dict,
    base_doc: dict,
    patterns: Optional[List[str]],
    direction: str,
    threshold: float,
    min_wall: float,
    section: str = "wall_clock",
) -> int:
    fresh = flatten_wall(section_subtree(fresh_doc, section))
    base = flatten_wall(section_subtree(base_doc, section))
    selected_fresh = select_keys(fresh, patterns)
    selected_base = select_keys(base, patterns)
    common = sorted(set(selected_fresh) & set(selected_base))
    skipped = sorted(set(selected_fresh) ^ set(selected_base))
    if not common:
        print(f"no common selected {section} keys between fresh and "
              "committed artifacts; nothing to compare")
        return 0

    width = max(24, max(len(k) for k in common))
    regressions = []
    compared = 0
    print(f"{'key':<{width}} {'committed':>12} {'fresh':>12} {'ratio':>8}")
    for key in common:
        base_v, fresh_v = base[key], fresh[key]
        guards = (guard_wall(base, key), guard_wall(fresh, key))
        if min_wall and any(g is not None and g < min_wall for g in guards):
            print(f"{key:<{width}} {base_v:>12.4g} {fresh_v:>12.4g} "
                  f"{'—':>8}  (sub-{min_wall}s run, not compared)")
            continue
        compared += 1
        ratio = fresh_v / base_v if base_v else float("inf")
        bad = (ratio < 1.0 - threshold if direction == "higher"
               else ratio > 1.0 + threshold)
        flag = ""
        if bad:
            regressions.append(key)
            flag = "  << REGRESSION"
        print(f"{key:<{width}} {base_v:>12.4g} {fresh_v:>12.4g} "
              f"{ratio:>7.2f}x{flag}")
    if skipped:
        print(f"(skipped {len(skipped)} keys present on one side only: "
              f"{', '.join(skipped)})")

    if regressions:
        worse = "dropped" if direction == "higher" else "grew"
        print(f"\nFAIL: {len(regressions)} {section} figure(s) {worse} "
              f"beyond {threshold:.0%}: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    print(f"\nOK: no {direction}-is-better regression beyond "
          f"{threshold:.0%} across {compared} compared figures")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare a fresh BENCH artifact's wall_clock figures "
                    "against the committed baseline")
    parser.add_argument("artifact",
                        help="repo-relative BENCH_*.json path (fresh copy "
                             "on disk, baseline from git)")
    parser.add_argument("--ref", default="HEAD",
                        help="git ref holding the baseline (default: HEAD)")
    parser.add_argument("--baseline",
                        help="compare against this file instead of a git "
                             "ref (for testing the checker itself)")
    parser.add_argument("--select", action="append", metavar="PATTERN",
                        help="fnmatch pattern over dotted wall_clock keys; "
                             "repeatable (default: every numeric leaf)")
    parser.add_argument("--section", default="wall_clock",
                        help="dotted top-level subtree to compare "
                             "(default: wall_clock; e.g. fleet for the "
                             "deterministic fleet-health payload figures)")
    parser.add_argument("--direction", choices=("higher", "lower"),
                        default="higher",
                        help="which way is good for the selected figures "
                             "(default: higher)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.25")),
        help="max tolerated fractional regression (default 0.25)")
    parser.add_argument(
        "--min-wall", type=float, default=0.0,
        help="skip figures whose guarding wall_s/makespan_s (or the "
             "figure itself, when it is one) is under this many seconds "
             "on either side (default: compare everything)")
    args = parser.parse_args(argv)

    try:
        with open(args.artifact) as f:
            fresh_doc = json.load(f)
    except FileNotFoundError:
        print(f"error: {args.artifact} not found — run the benchmark "
              "first", file=sys.stderr)
        return 2
    if args.baseline:
        with open(args.baseline) as f:
            base_doc = json.load(f)
    else:
        base_doc = committed_baseline(args.ref, args.artifact)
        if base_doc is None:
            print(f"no committed {args.artifact} at {args.ref}; "
                  "nothing to compare")
            return 0
    return compare(fresh_doc, base_doc, args.select, args.direction,
                   args.threshold, args.min_wall, section=args.section)


if __name__ == "__main__":
    raise SystemExit(main())
